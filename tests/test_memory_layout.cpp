// Memory-layout regression tests for the large-run overhaul: landmark-vector
// interning (value aliasing, refcount lifetime, slot recycling), the
// PartialView position-table index under insert/remove churn, the pinned
// 512-node determinism goldens that the layout changes must not move by a
// byte, and a 32k-node construction smoke proving the startup path stays
// free of O(n^2) work at real scale.
#include <gtest/gtest.h>

#include <cinttypes>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "gocast/system.h"
#include "harness/csv.h"
#include "harness/scenario.h"
#include "membership/landmark_store.h"
#include "membership/partial_view.h"

namespace gocast {
namespace {

using membership::LandmarkStore;
using membership::LandmarkVector;
using membership::MemberEntry;
using membership::PartialView;

LandmarkVector vec(float head) {
  LandmarkVector v = membership::empty_landmarks();
  v[0] = head;
  return v;
}

MemberEntry member(NodeId id, float rtt0, SimTime heard_at = 0.0) {
  MemberEntry e;
  e.id = id;
  e.landmark_rtt = vec(rtt0);
  e.heard_at = heard_at;
  return e;
}

TEST(LandmarkStore, EqualVectorsAliasOneSlot) {
  LandmarkStore store;
  LandmarkStore::Handle a = store.intern(vec(0.25f));
  LandmarkStore::Handle b = store.intern(vec(0.25f));
  EXPECT_EQ(a, b);
  EXPECT_EQ(store.unique_count(), 2u);  // empty vector + one value
  EXPECT_EQ(store.get(a)[0], 0.25f);

  LandmarkStore::Handle c = store.intern(vec(0.5f));
  EXPECT_NE(a, c);
  EXPECT_EQ(store.unique_count(), 3u);
}

TEST(LandmarkStore, PartiallyMeasuredVectorsInternDespiteNaN) {
  // Unmeasured slots are NaN; bitwise hashing must still alias them.
  LandmarkStore store;
  LandmarkStore::Handle a = store.intern(membership::empty_landmarks());
  EXPECT_EQ(a, LandmarkStore::kEmptyHandle);
  LandmarkStore::Handle b = store.intern(vec(1.0f));  // slots 1..7 still NaN
  EXPECT_EQ(b, store.intern(vec(1.0f)));
  store.release(b);
}

TEST(LandmarkStore, LastReleaseRecyclesSlot) {
  LandmarkStore store;
  LandmarkStore::Handle a = store.intern(vec(0.1f));
  store.retain(a);
  store.release(a);
  EXPECT_EQ(store.unique_count(), 2u);  // still held by the intern ref
  store.release(a);
  EXPECT_EQ(store.unique_count(), 1u);  // value forgotten

  // The freed slot is reused for the next new value, and the old value
  // interns as new again rather than resolving to a stale slot.
  LandmarkStore::Handle b = store.intern(vec(0.2f));
  EXPECT_EQ(b, a);
  EXPECT_EQ(store.get(b)[0], 0.2f);
  LandmarkStore::Handle c = store.intern(vec(0.1f));
  EXPECT_NE(c, LandmarkStore::kEmptyHandle);
  EXPECT_EQ(store.get(c)[0], 0.1f);
}

TEST(PartialView, SharedStoreAliasesAcrossViews) {
  auto store = std::make_shared<LandmarkStore>();
  PartialView a(0, 8, Rng(1), store);
  PartialView b(1, 8, Rng(2), store);
  a.insert(member(7, 0.3f));
  b.insert(member(7, 0.3f));
  // One value, known to two views: one slot (plus the pinned empty vector).
  EXPECT_EQ(store->unique_count(), 2u);
  EXPECT_EQ(a.find(7)->landmark_rtt[0], 0.3f);
  EXPECT_EQ(b.find(7)->landmark_rtt[0], 0.3f);
}

TEST(PartialView, RemoveOnNodeDeathReleasesInternedValue) {
  auto store = std::make_shared<LandmarkStore>();
  PartialView a(0, 8, Rng(1), store);
  PartialView b(1, 8, Rng(2), store);
  a.insert(member(7, 0.3f));
  b.insert(member(7, 0.3f));
  a.remove(7);
  EXPECT_EQ(store->unique_count(), 2u);  // b still references it
  b.remove(7);
  EXPECT_EQ(store->unique_count(), 1u);  // last reference gone
}

TEST(PartialView, DestructionReleasesAllReferences) {
  auto store = std::make_shared<LandmarkStore>();
  {
    PartialView view(0, 16, Rng(1), store);
    for (NodeId id = 1; id <= 10; ++id) {
      view.insert(member(id, static_cast<float>(id) * 0.01f));
    }
    EXPECT_EQ(store->unique_count(), 11u);
  }
  EXPECT_EQ(store->unique_count(), 1u);
}

TEST(PartialView, EvictionReleasesTheVictimsReference) {
  auto store = std::make_shared<LandmarkStore>();
  PartialView view(0, 4, Rng(3), store);
  for (NodeId id = 1; id <= 100; ++id) {
    view.insert(member(id, static_cast<float>(id)));
  }
  EXPECT_EQ(view.size(), 4u);
  // Only the four surviving entries hold references.
  EXPECT_EQ(store->unique_count(), 5u);
}

TEST(PartialView, RefreshSwapsReferenceToNewValue) {
  auto store = std::make_shared<LandmarkStore>();
  PartialView view(0, 8, Rng(1), store);
  view.insert(member(7, 0.3f, 1.0));
  view.insert(member(7, 0.4f, 2.0));  // newer measurement replaces the value
  EXPECT_EQ(store->unique_count(), 2u);  // 0.3f was released
  EXPECT_EQ(view.find(7)->landmark_rtt[0], 0.4f);
}

TEST(PartialView, IndexSurvivesInsertRemoveChurn) {
  // Insert/remove churn drives the position-table index through tombstone
  // accumulation and in-place rebuilds; a shadow std::set checks every
  // membership answer along the way.
  PartialView view(0, 8, Rng(9));
  std::set<NodeId> shadow;
  Rng rng(1234);
  for (int step = 0; step < 4000; ++step) {
    NodeId id = static_cast<NodeId>(1 + rng.next_below(64));
    if (rng.next_below(2) == 0 && view.size() >= 8) {
      view.remove(id);
      shadow.erase(id);
    } else {
      if (!view.contains(id) && view.size() >= 8) {
        // Full view: insertion evicts an unknown victim, so resync the
        // shadow from the view's own enumeration afterwards.
        view.insert(member(id, static_cast<float>(id)));
        shadow.clear();
        for (std::size_t p = 0; p < view.size(); ++p) {
          shadow.insert(view.id_at(p));
        }
      } else {
        view.insert(member(id, static_cast<float>(id)));
        shadow.insert(id);
      }
    }
    ASSERT_EQ(view.size(), shadow.size());
    for (NodeId probe = 1; probe <= 64; ++probe) {
      ASSERT_EQ(view.contains(probe), shadow.count(probe) > 0)
          << "step " << step << " probe " << probe;
    }
  }
}

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

TEST(MemoryLayoutGoldens, Scale512ScenarioIsByteIdentical) {
  // Pinned pre-overhaul goldens for the 512-node determinism scenario. The
  // interning, container right-sizing, and engine SoA work all claim to be
  // behavior-invisible; any drift in these constants means a layout change
  // leaked into protocol behavior and must be treated as a bug, not a
  // baseline refresh.
  harness::ScenarioConfig config;
  config.protocol = harness::Protocol::kGoCast;
  config.node_count = 512;
  config.seed = 42;
  config.warmup = 40.0;
  config.message_count = 20;
  config.message_rate = 50.0;
  config.drain = 10.0;

  auto r = harness::run_scenario(config);

  const std::string path = ::testing::TempDir() + "/gocast_golden_curve.csv";
  harness::write_curve_csv(path, r.curve);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();

  EXPECT_EQ(fnv1a(buf.str()), 0xa277e9d1d7ec1010ULL);
  EXPECT_EQ(r.deliveries, 10240u);
  EXPECT_EQ(r.duplicates, 841u);
  EXPECT_EQ(r.traffic.total_sent().messages, 796827u);
  EXPECT_EQ(r.traffic.total_sent().bytes, 76026165u);
  EXPECT_EQ(r.traffic.delivered(), 795819u);
  EXPECT_EQ(r.traffic.lost(), 0u);
  EXPECT_EQ(r.report.delivered_fraction, 1.0);
  EXPECT_EQ(r.report.max_delay, 0.46201276779174805);
  EXPECT_EQ(r.report.delay.mean(), 0.205988102073071);
}

TEST(MemoryLayoutGoldens, Construct32kNodesAndWarmStart) {
  // Large-deployment smoke: constructing and starting a 32k-node system
  // must not hit any O(n^2) startup path (this test is minutes, not hours,
  // precisely because there no longer is one), and the per-node accounted
  // footprint must stay bounded.
  core::SystemConfig config;
  config.node_count = 32768;
  config.seed = 1;
  config.latency = core::default_latency_model(1);
  core::System system(config);
  system.start();
  system.run_until(0.5);

  EXPECT_EQ(system.alive_nodes().size(), 32768u);
  EXPECT_GT(system.engine().processed(), 0u);

  const auto mem = system.memory_report();
  EXPECT_GT(mem.total_bytes(), 0u);
  // ~33 KB/node accounted after the overhaul; fail well before the
  // pre-overhaul ~70 KB/node territory.
  EXPECT_LT(mem.total_bytes() / config.node_count, 49152u);
}

}  // namespace
}  // namespace gocast

// Multi-group coverage (DESIGN.md §10): directory determinism (the property
// distributed gocastd processes rely on to agree on subscriptions without
// coordination), topology spec round-trips, runtime group churn through the
// System facade, per-group delivery invariants under harness-driven churn,
// the single-group regression guard (groups=1 must not engage any
// multi-group machinery), and the headline mux property — multiplexed
// gossip traffic strictly below the one-gossip-per-group baseline.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gocast/group_directory.h"
#include "gocast/system.h"
#include "harness/scenario.h"

namespace gocast {
namespace {

using core::GroupDirectory;
using core::GroupTopology;

GroupTopology sample_topology(std::size_t groups) {
  GroupTopology t;
  t.group_count = groups;
  t.size_exponent = 0.9;
  t.popularity_exponent = 0.6;
  t.min_group_size = 8;
  t.base_fraction = 0.5;
  t.correlation = 0.25;
  return t;
}

TEST(GroupDirectory, SameInputsProduceTheIdenticalDirectory) {
  // Two processes constructing from the same (topology, n, seed) must agree
  // on every subscription — gocastd --groups depends on exactly this.
  GroupTopology topology = sample_topology(6);
  GroupDirectory a(topology, 200, 99);
  GroupDirectory b(topology, 200, 99);
  ASSERT_EQ(a.group_count(), b.group_count());
  for (GroupId g = 1; g < a.group_count(); ++g) {
    EXPECT_EQ(a.members(g), b.members(g)) << "group " << g;
  }
  for (NodeId id = 0; id < 200; ++id) {
    EXPECT_EQ(a.groups_of(id), b.groups_of(id)) << "node " << id;
  }

  // A different seed must actually reshuffle membership.
  GroupDirectory c(topology, 200, 100);
  bool any_diff = false;
  for (GroupId g = 1; g < a.group_count() && !any_diff; ++g) {
    any_diff = a.members(g) != c.members(g);
  }
  EXPECT_TRUE(any_diff);
}

TEST(GroupDirectory, TablesAreWellFormed) {
  GroupTopology topology = sample_topology(8);
  GroupDirectory dir(topology, 256, 7);
  ASSERT_EQ(dir.group_count(), 8u);
  ASSERT_EQ(dir.node_count(), 256u);

  std::size_t prev_size = dir.members(1).size();
  EXPECT_LE(prev_size, static_cast<std::size_t>(256 * 0.5 + 1));
  for (GroupId g = 1; g < 8; ++g) {
    const auto& members = dir.members(g);
    // Zipf sizes: group 1 largest, never below the floor, monotone down.
    EXPECT_GE(members.size(), topology.min_group_size) << "group " << g;
    EXPECT_LE(members.size(), prev_size) << "group " << g;
    prev_size = members.size();
    // Sorted, unique, in range, and mirrored by groups_of.
    for (std::size_t i = 0; i < members.size(); ++i) {
      ASSERT_LT(members[i], 256u);
      if (i > 0) {
        EXPECT_LT(members[i - 1], members[i]);
      }
      EXPECT_TRUE(dir.subscribed(members[i], g));
    }
  }
  for (NodeId id = 0; id < 256; ++id) {
    EXPECT_TRUE(dir.subscribed(id, kDefaultGroup));  // group 0 is universal
    for (GroupId g : dir.groups_of(id)) {
      const auto& members = dir.members(g);
      EXPECT_TRUE(std::binary_search(members.begin(), members.end(), id))
          << "node " << id << " group " << g;
    }
  }
}

TEST(GroupDirectory, SubscribeUnsubscribeKeepBothTablesInSync) {
  GroupDirectory dir(sample_topology(4), 64, 3);
  // Pick a node outside group 2 and churn it in and out.
  NodeId outsider = kInvalidNode;
  for (NodeId id = 0; id < 64; ++id) {
    if (!dir.subscribed(id, 2)) {
      outsider = id;
      break;
    }
  }
  ASSERT_NE(outsider, kInvalidNode);

  std::size_t before = dir.members(2).size();
  dir.subscribe(outsider, 2);
  EXPECT_TRUE(dir.subscribed(outsider, 2));
  EXPECT_EQ(dir.members(2).size(), before + 1);
  dir.subscribe(outsider, 2);  // redundant: no double entry
  EXPECT_EQ(dir.members(2).size(), before + 1);
  dir.unsubscribe(outsider, 2);
  EXPECT_FALSE(dir.subscribed(outsider, 2));
  EXPECT_EQ(dir.members(2).size(), before);
  // Group 0 churn is a no-op: the universal group has no explicit table.
  dir.unsubscribe(outsider, kDefaultGroup);
  EXPECT_TRUE(dir.subscribed(outsider, kDefaultGroup));
}

TEST(GroupTopology, SpecRoundTrips) {
  GroupTopology t = sample_topology(8);
  t.churn_rate = 1.5;
  EXPECT_EQ(GroupTopology::parse(t.to_spec()), t);

  GroupTopology parsed =
      GroupTopology::parse("groups=4;zipf=0.8;pop=0.5;min=4;corr=0.1");
  EXPECT_EQ(parsed.group_count, 4u);
  EXPECT_DOUBLE_EQ(parsed.size_exponent, 0.8);
  EXPECT_DOUBLE_EQ(parsed.popularity_exponent, 0.5);
  EXPECT_EQ(parsed.min_group_size, 4u);
  EXPECT_DOUBLE_EQ(parsed.correlation, 0.1);
  EXPECT_DOUBLE_EQ(parsed.churn_rate, 0.0);
}

TEST(MultiGroupSystem, RuntimeJoinLeaveTracksTheDirectory) {
  core::SystemConfig config;
  config.node_count = 48;
  config.seed = 11;
  config.groups = sample_topology(3);
  core::System system(config);
  system.start();
  system.run_for(5.0);

  ASSERT_NE(system.directory(), nullptr);
  NodeId outsider = kInvalidNode;
  for (NodeId id = 0; id < 48; ++id) {
    if (!system.directory()->subscribed(id, 2)) {
      outsider = id;
      break;
    }
  }
  ASSERT_NE(outsider, kInvalidNode);
  EXPECT_FALSE(system.node(outsider).in_group(2));

  system.group_join(outsider, 2);
  EXPECT_TRUE(system.directory()->subscribed(outsider, 2));
  EXPECT_TRUE(system.node(outsider).in_group(2));
  system.run_for(5.0);

  system.group_leave(outsider, 2);
  EXPECT_FALSE(system.directory()->subscribed(outsider, 2));
  EXPECT_FALSE(system.node(outsider).in_group(2));
  // Deactivate-not-destroy: the group id stays known to the node.
  const auto& ids = system.node(outsider).extra_group_ids();
  EXPECT_TRUE(std::find(ids.begin(), ids.end(), GroupId{2}) != ids.end());

  // The per-group memory breakdown sees the extra groups.
  auto report = system.memory_report();
  EXPECT_FALSE(report.group_bytes.empty());
}

TEST(MultiGroupScenario, SingleGroupSpecStaysOnTheSingleGroupPath) {
  // groups=1 must be indistinguishable from no group spec at all: same
  // deliveries, same traffic, no per-group stats. This is the regression
  // guard for "single-group runs stay byte-identical".
  harness::ScenarioConfig config;
  config.node_count = 64;
  config.seed = 21;
  config.warmup = 40.0;
  config.message_count = 20;
  config.message_rate = 10.0;
  config.payload_bytes = 256;

  harness::ScenarioResult plain = harness::run_scenario(config);
  config.group_spec = "groups=1;zipf=0.9;pop=0.6";
  harness::ScenarioResult spec = harness::run_scenario(config);

  EXPECT_EQ(plain.deliveries, spec.deliveries);
  EXPECT_EQ(plain.duplicates, spec.duplicates);
  EXPECT_EQ(plain.gossip_messages, spec.gossip_messages);
  EXPECT_DOUBLE_EQ(plain.report.delivered_fraction,
                   spec.report.delivered_fraction);
  EXPECT_DOUBLE_EQ(plain.sim_end, spec.sim_end);
  EXPECT_TRUE(plain.group_stats.empty());
  EXPECT_TRUE(spec.group_stats.empty());
}

TEST(MultiGroupScenario, ChurnRunDeliversEveryGroupsTraffic) {
  // Group join/leave churn during the traffic window; the per-group
  // delivery invariant: every group that saw traffic delivers it to the
  // members subscribed for the message's lifetime (the tracker only counts
  // eligible subscribers).
  harness::ScenarioConfig config;
  config.node_count = 96;
  config.seed = 33;
  config.warmup = 80.0;
  config.message_count = 40;
  config.message_rate = 10.0;
  config.payload_bytes = 256;
  config.group_spec = "groups=4;zipf=0.9;pop=0.6;corr=0.25;churn=0.5";
  config.multiplex_gossip = true;

  harness::ScenarioResult r = harness::run_scenario(config);
  ASSERT_EQ(r.group_stats.size(), 4u);
  EXPECT_EQ(r.group_stats.front().group, kDefaultGroup);
  std::size_t groups_with_traffic = 0;
  for (const auto& g : r.group_stats) {
    EXPECT_GT(g.members, 0u) << "group " << g.group;
    if (g.messages == 0) continue;
    ++groups_with_traffic;
    EXPECT_GE(g.delivered_fraction, 0.99)
        << "group " << g.group << " lost traffic under churn";
  }
  // Popularity is Zipf but with 40 messages over 4 groups every group
  // should see at least one.
  EXPECT_GE(groups_with_traffic, 3u);
  EXPECT_GT(r.gossip_messages, 0u);
}

TEST(MultiGroupScenario, MultiplexingBeatsOneGossipPerGroup) {
  harness::ScenarioConfig config;
  config.node_count = 64;
  config.seed = 17;
  config.warmup = 60.0;
  config.message_count = 24;
  config.message_rate = 10.0;
  config.payload_bytes = 256;
  config.group_spec = "groups=4;zipf=0.9;pop=0.6;corr=0.25";

  config.multiplex_gossip = false;
  harness::ScenarioResult off = harness::run_scenario(config);
  config.multiplex_gossip = true;
  harness::ScenarioResult on = harness::run_scenario(config);

  ASSERT_GT(off.gossip_messages, 0u);
  ASSERT_GT(on.gossip_messages, 0u);
  // The point of the mux: strictly less gossip traffic, no delivery loss.
  EXPECT_LT(on.gossip_messages, off.gossip_messages);
  for (const harness::ScenarioResult* r : {&off, &on}) {
    for (const auto& g : r->group_stats) {
      if (g.messages > 0) {
        EXPECT_GE(g.delivered_fraction, 0.99) << "group " << g.group;
      }
    }
  }
}

}  // namespace
}  // namespace gocast

// Tests for the AS-level underlay: BA construction, connectivity, power-law
// shape, site assignment, and shortest-path link-load accounting.
#include "net/underlay.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "common/assert.h"
#include "net/traffic_stats.h"

namespace gocast::net {
namespace {

Underlay make(std::size_t routers, std::size_t m, std::uint64_t seed = 1) {
  return Underlay::barabasi_albert(routers, m, Rng(seed));
}

TEST(Underlay, BuildsRequestedRouterCount) {
  Underlay g = make(100, 2);
  EXPECT_EQ(g.router_count(), 100u);
  // Seed clique of 3 has 3 links; 97 new routers add 2 links each.
  EXPECT_EQ(g.link_count(), 3u + 97u * 2u);
}

TEST(Underlay, IsConnected) {
  Underlay g = make(200, 2);
  std::vector<bool> seen(g.router_count(), false);
  std::deque<std::uint32_t> queue{0};
  seen[0] = true;
  std::size_t count = 0;
  while (!queue.empty()) {
    std::uint32_t u = queue.front();
    queue.pop_front();
    ++count;
    for (std::uint32_t v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  EXPECT_EQ(count, g.router_count());
}

TEST(Underlay, HasPowerLawHubs) {
  // Preferential attachment must concentrate degree: the max degree should
  // far exceed the mean (that is what creates bottleneck links).
  Underlay g = make(500, 2);
  std::size_t max_degree = 0;
  std::size_t total = 0;
  for (std::uint32_t r = 0; r < g.router_count(); ++r) {
    max_degree = std::max(max_degree, g.neighbors(r).size());
    total += g.neighbors(r).size();
  }
  double mean = static_cast<double>(total) / static_cast<double>(g.router_count());
  EXPECT_GT(static_cast<double>(max_degree), 5.0 * mean);
}

TEST(Underlay, RejectsBadParameters) {
  EXPECT_THROW(make(3, 3), AssertionError);
  EXPECT_THROW(make(10, 0), AssertionError);
}

TEST(Underlay, AssignSitesCoversAll) {
  Underlay g = make(50, 2);
  Rng rng(5);
  g.assign_sites(200, rng);
  EXPECT_EQ(g.site_count(), 200u);
  for (std::uint32_t s = 0; s < 200; ++s) {
    EXPECT_LT(g.router_of_site(s), 50u);
  }
}

TEST(Underlay, LinkLoadsRequireSiteAssignment) {
  Underlay g = make(50, 2);
  std::unordered_map<std::uint64_t, double> traffic;
  EXPECT_THROW((void)g.link_loads(traffic), AssertionError);
}

TEST(Underlay, LinkLoadsRouteAlongPaths) {
  Underlay g = make(50, 2, 3);
  Rng rng(5);
  g.assign_sites(50, rng);

  std::unordered_map<std::uint64_t, double> traffic;
  // Find two sites on different routers.
  std::uint32_t site_a = 0;
  std::uint32_t site_b = 1;
  while (g.router_of_site(site_a) == g.router_of_site(site_b)) ++site_b;
  traffic[TrafficStats::pack_pair(site_a, site_b)] = 1000.0;

  auto loads = g.link_loads(traffic);
  ASSERT_FALSE(loads.empty());
  // Every loaded link carries exactly the full 1000 bytes (single path).
  for (const auto& load : loads) {
    EXPECT_DOUBLE_EQ(load.bytes, 1000.0);
  }
  // Loads are sorted descending.
  for (std::size_t i = 1; i < loads.size(); ++i) {
    EXPECT_GE(loads[i - 1].bytes, loads[i].bytes);
  }
}

TEST(Underlay, SameRouterTrafficImposesNoStress) {
  Underlay g = make(50, 2);
  Rng rng(5);
  g.assign_sites(4, rng);
  // Force two sites onto one router by searching for a collision.
  std::uint32_t a = 0;
  std::uint32_t b = 1;
  bool found = false;
  for (std::uint32_t i = 0; i < 4 && !found; ++i) {
    for (std::uint32_t j = i + 1; j < 4; ++j) {
      if (g.router_of_site(i) == g.router_of_site(j)) {
        a = i;
        b = j;
        found = true;
        break;
      }
    }
  }
  if (!found) GTEST_SKIP() << "no co-located sites in this draw";
  std::unordered_map<std::uint64_t, double> traffic;
  traffic[TrafficStats::pack_pair(a, b)] = 1000.0;
  EXPECT_TRUE(g.link_loads(traffic).empty());
}

TEST(Underlay, AggregatesMultipleFlowsOnSharedLinks) {
  Underlay g = make(30, 1, 9);  // tree-like: paths share links heavily
  Rng rng(5);
  g.assign_sites(30, rng);
  std::unordered_map<std::uint64_t, double> traffic;
  for (std::uint32_t s = 1; s < 30; ++s) {
    if (g.router_of_site(0) != g.router_of_site(s)) {
      traffic[TrafficStats::pack_pair(0, s)] = 100.0;
    }
  }
  auto loads = g.link_loads(traffic);
  ASSERT_FALSE(loads.empty());
  // The hottest link near site 0's router should carry several flows.
  EXPECT_GT(loads.front().bytes, 200.0);
}

TEST(UnderlayHierarchical, BuildsConnectedRegionalGraph) {
  Underlay g = Underlay::hierarchical(120, 6, 2, Rng(4));
  EXPECT_EQ(g.router_count(), 120u);
  EXPECT_EQ(g.region_count(), 6u);
  // Connected across regions (backbone ring + chords).
  std::vector<bool> seen(g.router_count(), false);
  std::deque<std::uint32_t> queue{0};
  seen[0] = true;
  std::size_t count = 0;
  while (!queue.empty()) {
    std::uint32_t u = queue.front();
    queue.pop_front();
    ++count;
    for (std::uint32_t v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        queue.push_back(v);
      }
    }
  }
  EXPECT_EQ(count, g.router_count());
  // Every region is populated.
  std::vector<int> per_region(6, 0);
  for (std::uint32_t r = 0; r < g.router_count(); ++r) {
    ++per_region[g.region_of_router(r)];
  }
  for (int c : per_region) EXPECT_GE(c, 10);
}

TEST(UnderlayHierarchical, LatencyAssignmentGroupsNearbySites) {
  // Sites on a ring: latency-adjacent sites must land in the same region
  // far more often than random assignment would (1/regions).
  Underlay g = Underlay::hierarchical(120, 6, 2, Rng(5));
  RingLatencyModel latency(120, 0.1);
  Rng rng(6);
  g.assign_sites_by_latency(latency, rng);

  std::size_t same_region = 0;
  for (std::uint32_t s = 0; s + 1 < 120; ++s) {
    if (g.region_of_router(g.router_of_site(s)) ==
        g.region_of_router(g.router_of_site(s + 1))) {
      ++same_region;
    }
  }
  EXPECT_GT(same_region, 80u);  // random would give ~20
}

TEST(UnderlayHierarchical, FlatGraphRejectsLatencyAssignment) {
  Underlay g = Underlay::barabasi_albert(50, 2, Rng(7));
  RingLatencyModel latency(50, 0.1);
  Rng rng(8);
  EXPECT_THROW(g.assign_sites_by_latency(latency, rng), AssertionError);
}

TEST(UnderlayHierarchical, CrossRegionTrafficUsesBackbone) {
  Underlay g = Underlay::hierarchical(120, 6, 2, Rng(9));
  RingLatencyModel latency(120, 0.1);
  Rng rng(10);
  g.assign_sites_by_latency(latency, rng);

  // Find two sites in different regions and route traffic between them.
  std::uint32_t a = 0;
  std::uint32_t b = 1;
  while (g.region_of_router(g.router_of_site(a)) ==
         g.region_of_router(g.router_of_site(b))) {
    ++b;
    ASSERT_LT(b, 120u);
  }
  std::unordered_map<std::uint64_t, double> traffic;
  traffic[TrafficStats::pack_pair(a, b)] = 100.0;
  auto loads = g.link_loads(traffic);
  ASSERT_FALSE(loads.empty());
  // At least one loaded link must join two regions (a backbone hop).
  bool crosses = false;
  for (const auto& load : loads) {
    if (g.region_of_router(load.router_a) != g.region_of_router(load.router_b)) {
      crosses = true;
    }
  }
  EXPECT_TRUE(crosses);
}

TEST(UnderlayHierarchical, RegionalPeeringAddsLinksBetweenCloseRegions) {
  Underlay g = Underlay::hierarchical(120, 6, 2, Rng(11));
  RingLatencyModel latency(120, 0.1);
  Rng rng(12);
  g.assign_sites_by_latency(latency, rng);
  std::size_t before = g.link_count();
  g.add_regional_peering(latency, 8, rng);
  EXPECT_GT(g.link_count(), before);
}

TEST(UnderlayHierarchical, PeeringRequiresAssignedSites) {
  Underlay g = Underlay::hierarchical(120, 6, 2, Rng(13));
  RingLatencyModel latency(120, 0.1);
  Rng rng(14);
  EXPECT_THROW(g.add_regional_peering(latency, 8, rng), AssertionError);
}

TEST(Underlay, DeterministicPerSeed) {
  Underlay a = make(60, 2, 11);
  Underlay b = make(60, 2, 11);
  for (std::uint32_t r = 0; r < 60; ++r) {
    EXPECT_EQ(a.neighbors(r), b.neighbors(r));
  }
}

TEST(Underlay, MeanRouterDistanceIsSmall) {
  // BA graphs are small-world: mean distance should be a few hops.
  Underlay g = make(200, 2);
  double mean = g.mean_router_distance();
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 8.0);
}

}  // namespace
}  // namespace gocast::net

// common::FlatMap unit tests: probing/tombstone mechanics, rehash behavior,
// deterministic iteration, and a differential fuzz against
// std::unordered_map (the container it replaced on the hot path).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/flat_map.h"
#include "common/rng.h"

namespace gocast {
namespace {

using common::FlatMap;

TEST(FlatMap, InsertFindErase) {
  FlatMap<int, int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(1));
  EXPECT_EQ(map.find(1), map.end());

  auto [it, inserted] = map.try_emplace(1, 10);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(it->first, 1);
  EXPECT_EQ(it->second, 10);
  EXPECT_EQ(map.size(), 1u);

  auto [it2, inserted2] = map.try_emplace(1, 99);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(it2->second, 10) << "try_emplace must not overwrite";

  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_EQ(map.erase(1), 0u);
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(1));
}

TEST(FlatMap, SubscriptInsertsDefaultAndUpdates) {
  FlatMap<int, std::uint64_t> map;
  EXPECT_EQ(map[7], 0u);
  map[7] = 42;
  EXPECT_EQ(map[7], 42u);
  map[7] += 1;
  EXPECT_EQ(map.find(7)->second, 43u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap, GrowthKeepsAllElements) {
  FlatMap<int, int> map;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) map[i] = i * 3;
  EXPECT_EQ(map.size(), static_cast<std::size_t>(kN));
  for (int i = 0; i < kN; ++i) {
    ASSERT_TRUE(map.contains(i)) << i;
    EXPECT_EQ(map.find(i)->second, i * 3);
  }
  EXPECT_FALSE(map.contains(kN));
}

TEST(FlatMap, ReservePreventsRehashDuringFill) {
  FlatMap<int, int> map;
  map.reserve(1000);
  const std::size_t cap = map.capacity();
  ASSERT_GT(cap, 0u);
  for (int i = 0; i < 1000; ++i) map[i] = i;
  EXPECT_EQ(map.capacity(), cap) << "reserve(n) must cover n inserts";
}

// try_emplace/operator[] on a present key must never rehash, even when the
// table sits exactly at the load threshold where the next NEW key would —
// matches std::unordered_map's rule that lookup of an existing key never
// invalidates references.
TEST(FlatMap, ExistingKeyAccessNeverInvalidates) {
  FlatMap<int, int> map;
  map[0] = 0;
  // Fill until one more new key would trigger a rehash.
  int key = 1;
  while ((map.size() + 1) * 8 <= map.capacity() * 7) {
    map[key] = key;
    ++key;
  }
  const std::size_t cap = map.capacity();
  int* ref = &map[0];
  for (int k = 0; k < key; ++k) {
    map[k] = k;
    auto [it, inserted] = map.try_emplace(k, -1);
    EXPECT_FALSE(inserted);
    EXPECT_EQ(it->second, k);
  }
  EXPECT_EQ(map.capacity(), cap) << "existing-key access rehashed";
  EXPECT_EQ(ref, &map[0]) << "existing-key access moved elements";
  EXPECT_EQ(*ref, 0);
}

// Steady-state churn at constant size must not grow the table: tombstones
// are reclaimed by same-capacity rehash, not by doubling forever.
TEST(FlatMap, TombstoneChurnKeepsCapacityBounded) {
  FlatMap<std::uint64_t, int> map;
  for (std::uint64_t i = 0; i < 100; ++i) map[i] = 1;
  const std::size_t cap_after_fill = map.capacity();
  for (std::uint64_t round = 0; round < 200; ++round) {
    for (std::uint64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(map.erase(round * 100 + i), 1u);
      map[(round + 1) * 100 + i] = 1;
    }
    EXPECT_EQ(map.size(), 100u);
  }
  // Allow one doubling of slack, but 20k churned keys must not accumulate.
  EXPECT_LE(map.capacity(), cap_after_fill * 2)
      << "tombstones were never reclaimed";
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_TRUE(map.contains(200 * 100 + i));
  }
}

TEST(FlatMap, EraseWhileIterating) {
  FlatMap<int, int> map;
  for (int i = 0; i < 100; ++i) map[i] = i;
  for (auto it = map.begin(); it != map.end();) {
    if (it->first % 2 == 0) {
      it = map.erase(it);
    } else {
      ++it;
    }
  }
  EXPECT_EQ(map.size(), 50u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(map.contains(i), i % 2 == 1) << i;
}

TEST(FlatMap, ClearReleasesAndReuses) {
  FlatMap<int, std::vector<int>> map;
  map[1] = std::vector<int>(1000, 7);
  map[2] = std::vector<int>(1000, 8);
  map.clear();
  EXPECT_TRUE(map.empty());
  EXPECT_FALSE(map.contains(1));
  map[3] = {1, 2, 3};
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.find(3)->second.size(), 3u);
}

// Erasing must reset the slot's value so owned resources (payload buffers,
// pending vectors) are released right away, not at the next rehash.
TEST(FlatMap, EraseReleasesOwnedResources) {
  FlatMap<int, std::shared_ptr<int>> map;
  auto payload = std::make_shared<int>(5);
  std::weak_ptr<int> probe = payload;
  map[1] = std::move(payload);
  EXPECT_FALSE(probe.expired());
  EXPECT_EQ(map.erase(1), 1u);
  EXPECT_TRUE(probe.expired()) << "erase left the value alive in a tombstone";
}

// Iteration order is a pure function of operation history: two maps fed the
// same deterministic op sequence iterate identically. The simulation relies
// on this for bit-identical runs per seed.
TEST(FlatMap, IterationOrderDeterministicForSameHistory) {
  auto build = [] {
    FlatMap<std::uint64_t, std::uint64_t> map;
    Rng rng(1234);
    for (int i = 0; i < 2000; ++i) {
      std::uint64_t k = rng.next_below(3000);
      if (rng.next_unit() < 0.6) {
        map[k] = k + 1;
      } else {
        map.erase(k);
      }
    }
    return map;
  };
  auto a = build();
  auto b = build();
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seq_a;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seq_b;
  for (const auto& kv : a) seq_a.push_back(kv);
  for (const auto& kv : b) seq_b.push_back(kv);
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_FALSE(seq_a.empty());
}

// Differential fuzz: random interleaving of insert/erase/lookup/clear mirrors
// std::unordered_map exactly (same membership and values at every checkpoint).
TEST(FlatMap, DifferentialFuzzAgainstUnorderedMap) {
  FlatMap<std::uint64_t, std::uint64_t> flat;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(99);

  for (int op = 0; op < 20000; ++op) {
    const std::uint64_t key = rng.next_below(500);  // small space => collisions
    const double dice = rng.next_unit();
    if (dice < 0.45) {
      const std::uint64_t value = rng.next_below(1u << 20);
      flat[key] = value;
      ref[key] = value;
    } else if (dice < 0.75) {
      EXPECT_EQ(flat.erase(key), ref.erase(key)) << "op " << op;
    } else if (dice < 0.97) {
      auto fit = flat.find(key);
      auto rit = ref.find(key);
      ASSERT_EQ(fit != flat.end(), rit != ref.end()) << "op " << op;
      if (rit != ref.end()) {
        EXPECT_EQ(fit->second, rit->second) << "op " << op;
      }
    } else {
      flat.clear();
      ref.clear();
    }
    ASSERT_EQ(flat.size(), ref.size()) << "op " << op;

    if (op % 2500 == 2499) {  // full-content checkpoint
      std::vector<std::pair<std::uint64_t, std::uint64_t>> a;
      for (const auto& kv : flat) a.push_back(kv);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> b(ref.begin(),
                                                             ref.end());
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      ASSERT_EQ(a, b) << "contents diverged by op " << op;
    }
  }
}

}  // namespace
}  // namespace gocast

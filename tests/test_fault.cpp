// Tests for the fault-injection subsystem: plan construction and spec
// round-trips, link-policy evaluation, injector determinism (runs are pure
// functions of the seed), crash/recover semantics against a live system,
// and the invariant checker (silent on healthy runs, loud on planted bugs).
#include "fault/fault_plan.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/assert.h"
#include "fault/fault_injector.h"
#include "fault/invariant_checker.h"
#include "fault/link_policy.h"
#include "gocast/system.h"
#include "harness/runner.h"

namespace gocast::fault {
namespace {

// ---------------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------------

TEST(FaultPlan, BuildersKeepTheTimelineSorted) {
  FaultPlan plan;
  plan.heal(60.0).crash_fraction(10.0, 0.2).partition_fraction(30.0, 0.3);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kPartition);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kHeal);
}

TEST(FaultPlan, ParsesTheDocumentedExample) {
  FaultPlan plan =
      FaultPlan::parse("330:crash:frac=0.2; 400:partition:frac=0.3; 460:heal");
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kCrash);
  EXPECT_DOUBLE_EQ(plan.events()[0].at, 330.0);
  EXPECT_DOUBLE_EQ(plan.events()[0].fraction, 0.2);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kPartition);
  EXPECT_DOUBLE_EQ(plan.events()[1].fraction, 0.3);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kHeal);
  EXPECT_DOUBLE_EQ(plan.events()[2].at, 460.0);
}

TEST(FaultPlan, EmptySpecIsAnEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("  ; ;").empty());
}

TEST(FaultPlan, SpecRoundTripsEveryKind) {
  FaultPlan plan;
  plan.crash_fraction(10.5, 0.25)
      .crash_count(11.0, 3)
      .crash_node(12.0, 42)
      .crash_site(13.0, 7)
      .recover_count(14.0, 2)
      .recover_node(15.0, 42)
      .partition_fraction(16.0, 0.3)
      .heal(17.0)
      .degrade(18.0, 2.5, 0.05, 0.1, 0.2)
      .restore(19.0)
      .set_loss(20.0, 0.05);
  FaultPlan reparsed = FaultPlan::parse(plan.to_spec());
  EXPECT_EQ(reparsed, plan);
  // And the spec itself is a fixed point.
  EXPECT_EQ(reparsed.to_spec(), plan.to_spec());
}

TEST(FaultPlan, SpecRoundTripsAdversarialKinds) {
  FaultPlan plan;
  plan.mute_forwarder_fraction(10.0, 0.1)
      .mute_forwarder_node(11.0, 3)
      .digest_liar_fraction(12.0, 0.05)
      .digest_liar_node(13.0, 7)
      .degree_liar_fraction(14.0, 0.1)
      .degree_liar_fraction(14.5, 0.1, 2, 3)
      .slow_fraction(15.0, 0.2, 0.05)
      .slow_node(16.0, 9, 0.01)
      .cure_node(17.0, 3)
      .cure_all(18.0);
  FaultPlan reparsed = FaultPlan::parse(plan.to_spec());
  EXPECT_EQ(reparsed, plan);
  EXPECT_EQ(reparsed.to_spec(), plan.to_spec());
}

TEST(FaultPlan, RejectsMalformedAdversarialSpecs) {
  // slow requires a positive delay=.
  EXPECT_THROW(FaultPlan::parse("10:slow:frac=0.1"), AssertionError);
  EXPECT_THROW(FaultPlan::parse("10:slow:delay=0,frac=0.1"), AssertionError);
  // Behavior kinds need victims.
  EXPECT_THROW(FaultPlan::parse("10:mute_forwarder"), AssertionError);
  EXPECT_THROW(FaultPlan::parse("10:degree_liar:rand=2"), AssertionError);
  // cure takes at most node=.
  EXPECT_THROW(FaultPlan::parse("10:cure:frac=0.5"), AssertionError);
  // Keys of other kinds are rejected, not ignored.
  EXPECT_THROW(FaultPlan::parse("10:digest_liar:node=1,delay=0.1"),
               AssertionError);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("10:explode"), AssertionError);
  EXPECT_THROW(FaultPlan::parse("crash:frac=0.1"), AssertionError);
  EXPECT_THROW(FaultPlan::parse("10:crash"), AssertionError);  // no victims
  EXPECT_THROW(FaultPlan::parse("10:crash:frac=abc"), AssertionError);
  EXPECT_THROW(FaultPlan::parse("10:crash:bogus=1"), AssertionError);
  EXPECT_THROW(FaultPlan::parse("10:heal:frac=0.2"), AssertionError);
  EXPECT_THROW(FaultPlan::parse("-5:heal"), AssertionError);
  EXPECT_THROW(FaultPlan::parse("10:degrade"), AssertionError);
  EXPECT_THROW(FaultPlan::parse("10:loss:p=1.5"), AssertionError);
}

// ---------------------------------------------------------------------------
// LinkPolicyTable
// ---------------------------------------------------------------------------

TEST(LinkPolicyTable, PartitionBlocksCrossIslandLinksOnly) {
  LinkPolicyTable table(4);
  EXPECT_FALSE(table.partition_active());
  table.set_group(2, 1);
  table.set_group(3, 1);
  EXPECT_TRUE(table.partition_active());
  EXPECT_TRUE(table.severed(0, 2));
  EXPECT_TRUE(table.evaluate(0, 2).blocked);
  EXPECT_TRUE(table.evaluate(2, 0).blocked);
  EXPECT_FALSE(table.evaluate(0, 1).blocked);  // both island 0
  EXPECT_FALSE(table.evaluate(2, 3).blocked);  // both island 1
  table.heal_partitions();
  EXPECT_FALSE(table.partition_active());
  EXPECT_FALSE(table.evaluate(0, 2).blocked);
}

TEST(LinkPolicyTable, DegradationsCombineWorstCase) {
  LinkPolicyTable table(3);
  EXPECT_TRUE(table.evaluate(0, 1).trivial());

  table.degrade_all({2.0, 0.01, 0.5});
  table.degrade_node(1, {3.0, 0.02, 0.5});
  net::LinkDecision touching = table.evaluate(0, 1);
  EXPECT_DOUBLE_EQ(touching.latency_multiplier, 3.0);  // max of 2.0, 3.0
  EXPECT_DOUBLE_EQ(touching.jitter, 0.02);
  // Independent composition: 1 - (1-0.5)(1-0.5).
  EXPECT_DOUBLE_EQ(touching.extra_loss, 0.75);

  net::LinkDecision elsewhere = table.evaluate(0, 2);
  EXPECT_DOUBLE_EQ(elsewhere.latency_multiplier, 2.0);  // global only
  EXPECT_DOUBLE_EQ(elsewhere.extra_loss, 0.5);

  table.restore();
  EXPECT_FALSE(table.degraded());
  EXPECT_TRUE(table.evaluate(0, 1).trivial());
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

FaultPlan busy_plan() {
  FaultPlan plan;
  plan.crash_fraction(30.0, 0.2)
      .partition_fraction(35.0, 0.3)
      .recover_count(40.0, 2)
      .heal(45.0)
      .degrade(50.0, 2.0, 0.01, 0.0, 0.25)
      .restore(55.0);
  return plan;
}

std::vector<std::string> run_injector(std::uint64_t seed) {
  core::SystemConfig config;
  config.node_count = 32;
  config.seed = seed;
  core::System system(config);
  FaultInjector injector(system, busy_plan(), Rng(seed).fork("faults"));
  injector.arm();
  system.start();
  system.run_until(60.0);
  EXPECT_EQ(injector.events_applied(), busy_plan().size());
  return injector.log();
}

TEST(FaultInjector, SameSeedProducesIdenticalEventLog) {
  std::vector<std::string> first = run_injector(21);
  std::vector<std::string> second = run_injector(21);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FaultInjector, DifferentSeedsPickDifferentVictims) {
  // Not guaranteed for every pair of seeds, but these differ.
  EXPECT_NE(run_injector(21), run_injector(22));
}

TEST(FaultInjector, CrashAndRecoverChangeAliveCounts) {
  core::SystemConfig config;
  config.node_count = 32;
  config.seed = 5;
  core::System system(config);
  FaultPlan plan;
  plan.crash_count(10.0, 6).recover_count(20.0, 6);
  FaultInjector injector(system, plan, Rng(5).fork("faults"));
  injector.arm();
  system.start();
  system.run_until(15.0);
  EXPECT_EQ(system.network().alive_count(), 26u);
  system.run_until(30.0);
  EXPECT_EQ(system.network().alive_count(), 32u);
}

TEST(FaultInjector, NeverCrashesTheWholeSystem) {
  core::SystemConfig config;
  config.node_count = 16;
  config.seed = 9;
  core::System system(config);
  FaultPlan plan;
  plan.crash_fraction(10.0, 1.0);
  FaultInjector injector(system, plan, Rng(9).fork("faults"));
  injector.arm();
  system.start();
  system.run_until(15.0);
  EXPECT_GE(system.network().alive_count(), 1u);
}

TEST(FaultInjector, PartitionSplitsAndHealRejoinsThePolicy) {
  core::SystemConfig config;
  config.node_count = 16;
  config.seed = 3;
  core::System system(config);
  FaultPlan plan;
  plan.partition_fraction(5.0, 0.5).heal(10.0);
  FaultInjector injector(system, plan, Rng(3).fork("faults"));
  injector.arm();
  system.start();
  system.run_until(7.0);
  EXPECT_TRUE(injector.policy().partition_active());
  system.run_until(12.0);
  EXPECT_FALSE(injector.policy().partition_active());
}

// ---------------------------------------------------------------------------
// FaultInjector: adversarial behaviors
// ---------------------------------------------------------------------------

FaultPlan behavior_plan() {
  FaultPlan plan;
  plan.mute_forwarder_fraction(10.0, 0.15)
      .digest_liar_fraction(10.0, 0.1)
      .degree_liar_fraction(12.0, 0.1, 1, 1)
      .slow_fraction(14.0, 0.1, 0.02);
  return plan;
}

/// Runs the behavior plan against a fresh system and returns the victim set.
std::vector<NodeId> behavior_victims(std::uint64_t seed) {
  core::SystemConfig config;
  config.node_count = 48;
  config.seed = seed;
  core::System system(config);
  FaultInjector injector(system, behavior_plan(), Rng(seed).fork("faults"));
  injector.arm();
  system.start();
  system.run_until(20.0);
  EXPECT_EQ(injector.events_applied(), behavior_plan().size());
  return injector.adversaries();
}

TEST(FaultInjector, SameSeedSameAdversarySet) {
  std::vector<NodeId> first = behavior_victims(21);
  ASSERT_FALSE(first.empty());
  EXPECT_TRUE(std::is_sorted(first.begin(), first.end()));
  EXPECT_EQ(first, behavior_victims(21));
  EXPECT_NE(first, behavior_victims(22));
}

TEST(FaultInjector, AdversarySelectionIsThreadCountInvariant) {
  // Victim selection is a pure function of the job's own seed, so running
  // replications through the Runner must give the same victim sets at any
  // worker count (the bench's byte-identical-CSV contract).
  auto job = [](std::size_t i) {
    return behavior_victims(21 + static_cast<std::uint64_t>(i));
  };
  harness::Runner serial(1);
  harness::Runner pooled(4);
  std::vector<std::vector<NodeId>> a =
      serial.run<std::vector<NodeId>>(4, job);
  std::vector<std::vector<NodeId>> b =
      pooled.run<std::vector<NodeId>>(4, job);
  EXPECT_EQ(a, b);
}

TEST(FaultInjector, BehaviorsFlipNodesAdversarialAndCureRevokes) {
  core::SystemConfig config;
  config.node_count = 32;
  config.seed = 6;
  core::System system(config);
  FaultPlan plan;
  plan.mute_forwarder_fraction(10.0, 0.2).slow_node(10.0, 4, 0.05).cure_all(
      20.0);
  FaultInjector injector(system, plan, Rng(6).fork("faults"));
  injector.arm();
  system.start();
  system.run_until(15.0);
  std::vector<NodeId> victims = injector.adversaries();
  ASSERT_FALSE(victims.empty());
  EXPECT_TRUE(std::binary_search(victims.begin(), victims.end(), NodeId{4}));
  for (NodeId id : victims) {
    EXPECT_FALSE(system.node(id).fault_behavior().honest()) << "node " << id;
  }
  EXPECT_DOUBLE_EQ(system.node(4).fault_behavior().processing_delay, 0.05);
  system.run_until(25.0);
  EXPECT_TRUE(injector.adversaries().empty());
  for (NodeId id : victims) {
    EXPECT_TRUE(system.node(id).fault_behavior().honest()) << "node " << id;
  }
}

TEST(FaultInjector, CureNodeLeavesOtherVictimsActive) {
  core::SystemConfig config;
  config.node_count = 16;
  config.seed = 2;
  core::System system(config);
  FaultPlan plan;
  plan.digest_liar_node(5.0, 3).digest_liar_node(5.0, 9).cure_node(10.0, 3);
  FaultInjector injector(system, plan, Rng(2).fork("faults"));
  injector.arm();
  system.start();
  system.run_until(12.0);
  EXPECT_TRUE(system.node(3).fault_behavior().honest());
  EXPECT_TRUE(system.node(9).fault_behavior().digest_liar);
  EXPECT_EQ(injector.adversaries(), std::vector<NodeId>{NodeId{9}});
}

// ---------------------------------------------------------------------------
// InvariantChecker
// ---------------------------------------------------------------------------

TEST(InvariantChecker, HealthyRunHasNoViolations) {
  core::SystemConfig config;
  config.node_count = 64;
  config.seed = 17;
  core::System system(config);
  InvariantChecker checker(system);
  checker.start();
  system.start();
  system.run_until(150.0);  // well past settle_after
  EXPECT_GT(checker.sweeps(), 0u);
  for (const InvariantViolation& v : checker.violations()) {
    ADD_FAILURE() << "unexpected violation at t=" << v.at << ": " << v.what;
  }
}

TEST(InvariantChecker, DetectsPlantedDegreeViolation) {
  core::SystemConfig config;
  config.node_count = 64;
  config.seed = 17;
  core::System system(config);
  system.start();
  system.run_until(100.0);

  InvariantChecker checker(system);
  checker.check_now();
  ASSERT_EQ(checker.violation_count(), 0u);  // settled and healthy

  // Freeze maintenance (nothing sheds excess links any more) and force
  // extra random links onto node 0, pushing it past the C+1 band.
  system.freeze_all();
  int added = 0;
  for (NodeId peer = 1; peer < 64 && added < 4; ++peer) {
    if (!system.node(0).overlay().is_neighbor(peer)) {
      system.node(0).overlay().bootstrap_link(peer, overlay::LinkKind::kRandom);
      ++added;
    }
  }
  ASSERT_EQ(added, 4);
  checker.check_now();
  EXPECT_GT(checker.violation_count(), 0u);
  bool degree_violation = false;
  for (const InvariantViolation& v : checker.violations()) {
    if (v.what.find("degree") != std::string::npos) degree_violation = true;
  }
  EXPECT_TRUE(degree_violation);
}

TEST(InvariantChecker, DetectsStaleDeadNeighbor) {
  core::SystemConfig config;
  config.node_count = 32;
  config.seed = 4;
  core::System system(config);
  InvariantCheckerParams params;
  params.check_degrees = false;  // frozen nodes drift out of the band
  params.check_tree = false;
  params.check_connectivity = false;
  InvariantChecker checker(system, params);
  checker.start();
  system.start();
  system.run_until(80.0);
  EXPECT_EQ(checker.violation_count(), 0u);

  // Kill a node, make another node fully inert (freeze gates the tree
  // heartbeat handler, which otherwise forwards over every overlay link;
  // stop halts its timers), and plant a link to the dead peer on it: the
  // inert node never sends to the dead peer, so no TCP reset arrives and
  // the stale link persists — which the checker must flag after
  // dead_neighbor_timeout.
  NodeId observer = 5;
  NodeId dead = 6;
  system.node(dead).kill();
  system.run_until(82.0);
  system.node(observer).freeze();
  system.node(observer).stop();
  system.node(observer).overlay().bootstrap_link(dead,
                                                 overlay::LinkKind::kRandom);
  system.run_until(110.0);
  EXPECT_GT(checker.violation_count(), 0u);
  bool dead_violation = false;
  for (const InvariantViolation& v : checker.violations()) {
    if (v.what.find("dead") != std::string::npos) dead_violation = true;
  }
  EXPECT_TRUE(dead_violation);
}

TEST(InvariantChecker, PartitionSuspendsStructuralChecks) {
  core::SystemConfig config;
  config.node_count = 32;
  config.seed = 8;
  core::System system(config);
  InvariantChecker checker(system);
  system.start();
  system.run_until(100.0);
  checker.set_partition_active(true);
  checker.check_now();
  // Degree/tree/connectivity are suspended; only always-on checks ran.
  EXPECT_EQ(checker.violation_count(), 0u);
}

}  // namespace
}  // namespace gocast::fault

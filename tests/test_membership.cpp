// Tests for the bounded uniform partial view.
#include "membership/partial_view.h"

#include <gtest/gtest.h>

#include <set>

namespace gocast::membership {
namespace {

MemberEntry entry(NodeId id, SimTime heard_at = 0.0) {
  MemberEntry e;
  e.id = id;
  e.heard_at = heard_at;
  return e;
}

TEST(PartialView, InsertAndFind) {
  PartialView view(0, 10, Rng(1));
  view.insert(entry(5));
  EXPECT_TRUE(view.contains(5));
  EXPECT_EQ(view.size(), 1u);
  ASSERT_TRUE(view.find(5).has_value());
  EXPECT_EQ(view.find(5)->id, 5u);
  EXPECT_FALSE(view.find(99).has_value());
}

TEST(PartialView, IgnoresSelfAndInvalid) {
  PartialView view(7, 10, Rng(1));
  view.insert(entry(7));
  view.insert(entry(kInvalidNode));
  EXPECT_EQ(view.size(), 0u);
}

TEST(PartialView, RefreshKeepsNewestEntry) {
  PartialView view(0, 10, Rng(1));
  MemberEntry old_entry = entry(5, 1.0);
  old_entry.landmark_rtt[0] = 0.111f;
  view.insert(old_entry);

  MemberEntry newer = entry(5, 2.0);
  newer.landmark_rtt[0] = 0.222f;
  view.insert(newer);
  EXPECT_EQ(view.size(), 1u);
  EXPECT_FLOAT_EQ(view.find(5)->landmark_rtt[0], 0.222f);

  // Stale data must not overwrite fresher data.
  MemberEntry stale = entry(5, 0.5);
  stale.landmark_rtt[0] = 0.333f;
  view.insert(stale);
  EXPECT_FLOAT_EQ(view.find(5)->landmark_rtt[0], 0.222f);
}

TEST(PartialView, CapacityEnforcedWithRandomEviction) {
  PartialView view(0, 16, Rng(2));
  for (NodeId id = 1; id <= 100; ++id) view.insert(entry(id));
  EXPECT_EQ(view.size(), 16u);
}

TEST(PartialView, EvictionIsUniformOverCurrentEntries) {
  // When full, a uniformly random existing entry is evicted. Over many
  // trials, each of the 10 residents should be evicted ~equally often by
  // a single extra insert.
  const int trials = 2000;
  std::vector<int> evicted(11, 0);
  for (int t = 0; t < trials; ++t) {
    PartialView view(0, 10, Rng(static_cast<std::uint64_t>(t)));
    for (NodeId id = 1; id <= 10; ++id) view.insert(entry(id));
    view.insert(entry(99));
    for (NodeId id = 1; id <= 10; ++id) {
      if (!view.contains(id)) ++evicted[id];
    }
  }
  for (NodeId id = 1; id <= 10; ++id) {
    EXPECT_NEAR(evicted[id], trials / 10, trials / 25) << "id " << id;
  }
}

TEST(PartialView, RecirculationKeepsEntriesAlive) {
  // Membership entries survive through re-insertion (gossip recirculation):
  // an entry refreshed as often as new entries arrive stays present with
  // high probability, while one-shot entries wash out. This recency bias
  // is what flushes dead nodes from the system's views.
  int survivals = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    PartialView view(0, 10, Rng(static_cast<std::uint64_t>(t)));
    for (NodeId id = 1; id <= 10; ++id) view.insert(entry(id));
    for (NodeId round = 0; round < 50; ++round) {
      view.insert(entry(100 + round, static_cast<SimTime>(round)));
      view.insert(entry(1, static_cast<SimTime>(round)));  // recirculated
    }
    if (view.contains(1)) ++survivals;
  }
  EXPECT_GT(survivals, 60);
}

TEST(PartialView, RemoveDeletes) {
  PartialView view(0, 10, Rng(1));
  view.insert(entry(1));
  view.insert(entry(2));
  view.insert(entry(3));
  view.remove(2);
  EXPECT_FALSE(view.contains(2));
  EXPECT_EQ(view.size(), 2u);
  view.remove(99);  // no-op
  EXPECT_EQ(view.size(), 2u);
}

TEST(PartialView, RandomMemberFromEmptyIsInvalid) {
  PartialView view(0, 10, Rng(1));
  EXPECT_EQ(view.random_member(), kInvalidNode);
}

TEST(PartialView, RandomMemberCoversAll) {
  PartialView view(0, 10, Rng(3));
  for (NodeId id = 1; id <= 5; ++id) view.insert(entry(id));
  std::set<NodeId> seen;
  for (int i = 0; i < 200; ++i) seen.insert(view.random_member());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(PartialView, SampleWithoutReplacement) {
  PartialView view(0, 20, Rng(4));
  for (NodeId id = 1; id <= 10; ++id) view.insert(entry(id));
  auto sample = view.sample(4);
  EXPECT_EQ(sample.size(), 4u);
  std::set<NodeId> distinct;
  for (const auto& e : sample) distinct.insert(e.id);
  EXPECT_EQ(distinct.size(), 4u);
}

TEST(PartialView, RoundRobinVisitsEveryone) {
  PartialView view(0, 20, Rng(5));
  for (NodeId id = 1; id <= 7; ++id) view.insert(entry(id));
  std::set<NodeId> seen;
  for (int i = 0; i < 7; ++i) {
    NodeId id = view.next_round_robin();
    ASSERT_NE(id, kInvalidNode);
    seen.insert(id);
  }
  EXPECT_EQ(seen.size(), 7u);
  // Wraps around.
  EXPECT_NE(view.next_round_robin(), kInvalidNode);
}

TEST(PartialView, RoundRobinEmptyReturnsInvalid) {
  PartialView view(0, 20, Rng(5));
  EXPECT_EQ(view.next_round_robin(), kInvalidNode);
}

TEST(PartialView, RoundRobinSurvivesRemoval) {
  PartialView view(0, 20, Rng(6));
  for (NodeId id = 1; id <= 5; ++id) view.insert(entry(id));
  (void)view.next_round_robin();
  view.remove(3);
  for (int i = 0; i < 10; ++i) {
    NodeId id = view.next_round_robin();
    ASSERT_NE(id, kInvalidNode);
    EXPECT_NE(id, 3u);
  }
}

TEST(PartialView, IntegrateBatch) {
  PartialView view(0, 20, Rng(7));
  std::vector<MemberEntry> batch{entry(1), entry(2), entry(0 /*self*/), entry(3)};
  view.integrate(batch);
  EXPECT_EQ(view.size(), 3u);
}

TEST(MemberEntry, EmptyLandmarksAreNaN) {
  LandmarkVector v = empty_landmarks();
  for (float f : v) EXPECT_TRUE(std::isnan(f));
}

}  // namespace
}  // namespace gocast::membership

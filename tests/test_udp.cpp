// UdpRuntime coverage: real non-blocking UDP sockets on loopback with the
// epoll reactor — datagram exchange between two runtimes, timer behavior,
// ICMP-unreachable send-failure notification, frame filtering (misaddressed
// and unknown-source datagrams), stop-flag responsiveness, and an
// in-process 8-node overlay smoke where every node lives behind its own
// socket and a multicast injected at a non-root node reaches everyone.
#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "gocast/node.h"
#include "overlay/messages.h"
#include "runtime/udp_runtime.h"

namespace gocast {
namespace {

using runtime::UdpConfig;
using runtime::UdpRuntime;

struct RecordingEndpoint final : net::Endpoint {
  std::vector<NodeId> senders;
  std::vector<net::MessagePtr> messages;
  std::vector<NodeId> failures;
  void handle_message(NodeId from, const net::MessagePtr& msg) override {
    senders.push_back(from);
    messages.push_back(msg);
  }
  void handle_send_failure(NodeId to, const net::MessagePtr&) override {
    failures.push_back(to);
  }
};

/// Interleaves a set of runtimes on this thread for up to `seconds` of wall
/// time, or until `done` returns true.
template <class Done>
bool pump(const std::vector<UdpRuntime*>& runtimes, double seconds,
          Done done) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    for (auto* rt : runtimes) rt->poll();
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  for (auto* rt : runtimes) rt->poll();
  return done();
}

UdpConfig loopback_config(NodeId self) {
  UdpConfig config;
  config.self = self;
  config.listen_host = "127.0.0.1";
  config.listen_port = 0;  // ephemeral
  return config;
}

TEST(UdpRuntime, BindsEphemeralPortAndReportsIt) {
  UdpRuntime rt(loopback_config(1));
  EXPECT_GT(rt.port(), 0);
  EXPECT_EQ(rt.node_count(), 1u);
  EXPECT_TRUE(rt.alive(1));
}

TEST(UdpRuntime, BindFailureThrowsSetupError) {
  UdpRuntime first(loopback_config(1));
  UdpConfig config = loopback_config(2);
  config.listen_port = first.port();  // already taken
  EXPECT_THROW(UdpRuntime second(config), runtime::UdpSetupError);

  UdpConfig bad_host = loopback_config(3);
  bad_host.listen_host = "not-an-address";
  EXPECT_THROW(UdpRuntime third(bad_host), runtime::UdpSetupError);
}

TEST(UdpRuntime, TimersFireInDeadlineOrder) {
  UdpRuntime rt(loopback_config(1));
  std::vector<int> order;
  auto* order_ptr = &order;
  rt.schedule_after(0.02, [order_ptr] { order_ptr->push_back(2); });
  rt.schedule_after(0.01, [order_ptr] { order_ptr->push_back(1); });
  auto id = rt.schedule_after(0.015, [order_ptr] { order_ptr->push_back(9); });
  EXPECT_TRUE(rt.cancel(id));
  std::size_t fired = rt.run_for(0.2);
  EXPECT_EQ(fired, 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(UdpRuntime, DatagramsCrossBetweenTwoRuntimes) {
  UdpRuntime a(loopback_config(1));
  UdpRuntime b(loopback_config(2));
  a.add_peer(2, "127.0.0.1", b.port());
  b.add_peer(1, "127.0.0.1", a.port());
  RecordingEndpoint ep_a, ep_b;
  a.set_endpoint(1, &ep_a);
  b.set_endpoint(2, &ep_b);

  a.send(1, 2, a.make<overlay::PingMsg>(77));
  ASSERT_TRUE(pump({&a, &b}, 2.0, [&] { return !ep_b.senders.empty(); }));
  ASSERT_EQ(ep_b.senders.size(), 1u);
  EXPECT_EQ(ep_b.senders[0], 1u);
  ASSERT_EQ(ep_b.messages.size(), 1u);
  EXPECT_EQ(ep_b.messages[0]->packet_type(), overlay::kPktPing);

  // And the reverse direction.
  b.send(2, 1, b.make<overlay::PongMsg>(77, net::PeerDegrees{}));
  ASSERT_TRUE(pump({&a, &b}, 2.0, [&] { return !ep_a.senders.empty(); }));
  EXPECT_EQ(ep_a.senders[0], 2u);

  EXPECT_EQ(a.stats().datagrams_sent, 1u);
  EXPECT_EQ(a.stats().delivered, 1u);
  EXPECT_EQ(b.stats().delivered, 1u);
  EXPECT_EQ(a.stats().rejected_frames, 0u);
  EXPECT_GT(a.stats().bytes_sent, 0u);
  EXPECT_EQ(a.stats().bytes_sent,
            static_cast<std::uint64_t>(overlay::PingMsg(77).wire_size()));
}

TEST(UdpRuntime, SendToUnknownPeerNotifiesFailure) {
  UdpRuntime a(loopback_config(1));
  RecordingEndpoint ep;
  a.set_endpoint(1, &ep);
  a.send(1, 99, a.make<overlay::PingMsg>(1));
  ASSERT_TRUE(pump({&a}, 1.0, [&] { return !ep.failures.empty(); }));
  EXPECT_EQ(ep.failures[0], 99u);
  EXPECT_EQ(a.stats().dropped_unknown_peer, 1u);
}

TEST(UdpRuntime, IcmpUnreachableSurfacesAsSendFailure) {
  UdpRuntime a(loopback_config(1));
  std::uint16_t dead_port = 0;
  {
    // Bind-and-destroy guarantees a port with no listener behind it.
    UdpRuntime doomed(loopback_config(2));
    dead_port = doomed.port();
  }
  a.add_peer(2, "127.0.0.1", dead_port);
  RecordingEndpoint ep;
  a.set_endpoint(1, &ep);

  // The ICMP error arrives asynchronously; keep sending until the error
  // queue yields the notification (the first send rarely suffices).
  bool notified = pump({&a}, 3.0, [&] {
    if (!ep.failures.empty()) return true;
    a.send(1, 2, a.make<overlay::PingMsg>(9));
    return false;
  });
  ASSERT_TRUE(notified);
  EXPECT_EQ(ep.failures[0], 2u);
  EXPECT_GE(a.stats().icmp_unreachable + a.stats().send_failures, 1u);
}

TEST(UdpRuntime, MisaddressedAndUnknownSourceFramesAreDropped) {
  UdpRuntime a(loopback_config(1));
  UdpRuntime b(loopback_config(2));
  RecordingEndpoint ep_b;
  b.set_endpoint(2, &ep_b);

  // a's peer table claims node 5 lives at b's address; b (self=2) must
  // reject the frame as misaddressed without delivering it.
  a.add_peer(5, "127.0.0.1", b.port());
  a.send(1, 5, a.make<overlay::PingMsg>(3));
  ASSERT_TRUE(pump({&a, &b}, 2.0, [&] {
    return b.stats().rejected_misaddressed > 0;
  }));
  EXPECT_TRUE(ep_b.senders.empty());

  // Correctly addressed but from a source b has no endpoint entry for.
  a.add_peer(2, "127.0.0.1", b.port());
  a.send(1, 2, a.make<overlay::PingMsg>(4));
  ASSERT_TRUE(pump({&a, &b}, 2.0, [&] {
    return b.stats().rejected_unknown_src > 0;
  }));
  EXPECT_TRUE(ep_b.senders.empty());
  EXPECT_EQ(b.stats().delivered, 0u);
}

TEST(UdpRuntime, StopFlagEndsRunForEarly) {
  UdpRuntime rt(loopback_config(1));
  static volatile std::sig_atomic_t flag;
  flag = 0;
  rt.watch_stop_flag(&flag);
  rt.schedule_after(0.05, [] { flag = 1; });
  auto start = std::chrono::steady_clock::now();
  rt.run_for(30.0);
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_LT(elapsed, 5.0);
}

TEST(UdpRuntime, DeadNodeSendsAreDropped) {
  UdpRuntime a(loopback_config(1));
  UdpRuntime b(loopback_config(2));
  a.add_peer(2, "127.0.0.1", b.port());
  a.fail_node(1);
  EXPECT_FALSE(a.alive(1));
  a.send(1, 2, a.make<overlay::PingMsg>(5));
  EXPECT_EQ(a.stats().datagrams_sent, 0u);
  EXPECT_EQ(a.stats().dropped_dead, 1u);
}

// ---------------------------------------------------------------------------
// Live smoke: 8 nodes, each behind its own UDP socket, one multicast
// ---------------------------------------------------------------------------

TEST(UdpSmoke, EightSocketsDeliverOneMulticast) {
  constexpr std::size_t kNodes = 8;
  using LiveNode = core::GoCastNodeT<runtime::UdpContext>;

  std::vector<std::unique_ptr<UdpRuntime>> runtimes;
  for (NodeId id = 0; id < kNodes; ++id) {
    UdpConfig config = loopback_config(id);
    config.seed = 5 + id;
    runtimes.push_back(std::make_unique<UdpRuntime>(config));
  }
  std::vector<UdpRuntime*> rts;
  for (auto& rt : runtimes) rts.push_back(rt.get());
  for (NodeId a = 0; a < kNodes; ++a) {
    for (NodeId b = 0; b < kNodes; ++b) {
      if (a != b) runtimes[a]->add_peer(b, "127.0.0.1", runtimes[b]->port());
    }
  }

  core::GoCastConfig config;
  config.tree.heartbeat_period = 0.1;
  config.dissemination.gossip_period = 0.05;
  config.landmarks = {0, 1};

  Rng rng(5);
  std::vector<std::unique_ptr<LiveNode>> nodes;
  for (NodeId id = 0; id < kNodes; ++id) {
    nodes.push_back(std::make_unique<LiveNode>(
        id, *runtimes[id], config, rng.fork(static_cast<std::uint64_t>(id))));
  }

  std::vector<membership::MemberEntry> all(kNodes);
  for (NodeId id = 0; id < kNodes; ++id) all[id].id = id;
  Rng init_rng = rng.fork("init");
  for (NodeId id = 0; id < kNodes; ++id) {
    std::vector<membership::MemberEntry> others;
    for (const auto& entry : all) {
      if (entry.id != id) others.push_back(entry);
    }
    nodes[id]->seed_view(others);
    NodeId peer = static_cast<NodeId>((id + 1) % kNodes);
    nodes[id]->bootstrap_link(peer, overlay::LinkKind::kRandom);
    nodes[peer]->bootstrap_link(id, overlay::LinkKind::kRandom);
  }
  nodes[0]->become_root();

  std::map<MsgId, std::size_t> delivered;
  auto* delivered_ptr = &delivered;
  for (auto& node : nodes) {
    node->set_delivery_hook([delivered_ptr](const core::DeliveryEvent& e) {
      ++(*delivered_ptr)[e.id];
    });
  }
  for (NodeId id = 0; id < kNodes; ++id) {
    nodes[id]->start(init_rng.next_range(0.0, 0.05));
  }

  // Warm up until the overlay and tree form across the sockets.
  pump(rts, 1.5, [] { return false; });

  // Inject at a non-root node; every node must deliver exactly once.
  MsgId id = nodes[3]->multicast(256);
  bool full = pump(rts, 6.0, [&] { return (*delivered_ptr)[id] >= kNodes; });
  EXPECT_TRUE(full);
  EXPECT_EQ(delivered[id], kNodes);
  for (const auto& node : nodes) {
    EXPECT_EQ(node->deliveries_count(), 1u) << "node " << node->id();
  }
  std::uint64_t rejected = 0;
  for (auto* rt : rts) rejected += rt->stats().rejected_frames;
  EXPECT_EQ(rejected, 0u);
}

}  // namespace
}  // namespace gocast

// Property-based tests of the embedded tree, swept over seeds and sizes:
//   T1. exactly one root exists and the tree spans all alive nodes
//   T2. the tree-link set is a forest (no cycles)
//   T3. every tree link is an overlay link
//   T4. parent/child relations are symmetric after convergence
//   T5. root distances are consistent: child distance > parent distance
//   T6. after killing the root, a new root emerges and the tree re-spans
#include <gtest/gtest.h>

#include "analysis/graph_analysis.h"
#include "gocast/system.h"

namespace gocast {
namespace {

struct TreeCase {
  std::uint64_t seed;
  std::size_t nodes;
};

std::string tree_case_name(const ::testing::TestParamInfo<TreeCase>& info) {
  return "seed" + std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.nodes);
}

class TreePropertyTest : public ::testing::TestWithParam<TreeCase> {
 protected:
  void SetUp() override {
    core::SystemConfig config;
    config.node_count = GetParam().nodes;
    config.seed = GetParam().seed;
    system_ = std::make_unique<core::System>(config);
    system_->start();
    system_->run_for(120.0);
  }

  std::unique_ptr<core::System> system_;
};

TEST_P(TreePropertyTest, T1_SingleRootSpanningTree) {
  auto stats = analysis::tree_stats(*system_);
  EXPECT_NE(stats.root, kInvalidNode);
  EXPECT_TRUE(stats.spanning)
      << "reached " << stats.reachable_from_root << "/" << system_->size();
  int roots = 0;
  for (NodeId id = 0; id < system_->size(); ++id) {
    if (system_->node(id).tree().is_root()) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST_P(TreePropertyTest, T2_IsForest) {
  EXPECT_TRUE(analysis::tree_stats(*system_).is_forest);
}

TEST_P(TreePropertyTest, T3_TreeLinksAreOverlayLinks) {
  for (NodeId id = 0; id < system_->size(); ++id) {
    const auto& node = system_->node(id);
    NodeId parent = node.tree().parent();
    if (parent != kInvalidNode) {
      EXPECT_TRUE(node.overlay().is_neighbor(parent))
          << "node " << id << " parent " << parent;
    }
    for (NodeId child : node.tree().children()) {
      EXPECT_TRUE(node.overlay().is_neighbor(child))
          << "node " << id << " child " << child;
    }
  }
}

TEST_P(TreePropertyTest, T4_ParentChildSymmetry) {
  std::size_t asymmetric = 0;
  for (NodeId id = 0; id < system_->size(); ++id) {
    NodeId parent = system_->node(id).tree().parent();
    if (parent == kInvalidNode) continue;
    if (!system_->node(parent).tree().children().count(id)) ++asymmetric;
  }
  EXPECT_LE(asymmetric, 1u);
}

TEST_P(TreePropertyTest, T5_DistancesDecreaseTowardRoot) {
  for (NodeId id = 0; id < system_->size(); ++id) {
    const auto& tree = system_->node(id).tree();
    NodeId parent = tree.parent();
    if (parent == kInvalidNode) continue;
    SimTime mine = tree.root_distance();
    SimTime theirs = system_->node(parent).tree().root_distance();
    if (mine == kNever || theirs == kNever) continue;
    EXPECT_GT(mine, theirs - 1e-9) << "node " << id;
  }
}

TEST_P(TreePropertyTest, T6_SurvivesRootFailure) {
  auto before = analysis::tree_stats(*system_);
  system_->node(before.root).kill();
  system_->run_for(150.0);
  auto after = analysis::tree_stats(*system_);
  EXPECT_NE(after.root, before.root);
  EXPECT_TRUE(after.spanning);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TreePropertyTest,
                         ::testing::Values(TreeCase{201, 32}, TreeCase{202, 48},
                                           TreeCase{203, 64}, TreeCase{204, 96},
                                           TreeCase{205, 48}, TreeCase{206, 64}),
                         tree_case_name);

}  // namespace
}  // namespace gocast

// Tests for the CLI flag parser and CSV export helpers.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/args.h"
#include "harness/csv.h"

namespace gocast::harness {
namespace {

Args parse(std::vector<std::string> tokens,
           const std::vector<std::string>& allowed) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(tokens);
  storage.insert(storage.begin(), "prog");
  argv.reserve(storage.size());
  for (auto& s : storage) argv.push_back(s.data());
  return Args(static_cast<int>(argv.size()), argv.data(), allowed);
}

TEST(Args, ParsesEqualsAndSpaceForms) {
  Args args = parse({"--nodes=64", "--rate", "50.5", "--verbose"},
                    {"nodes", "rate", "verbose"});
  EXPECT_EQ(args.get_int("nodes", 0), 64);
  EXPECT_DOUBLE_EQ(args.get_double("rate", 0.0), 50.5);
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Args, FallbacksWhenAbsent) {
  Args args = parse({}, {"nodes"});
  EXPECT_FALSE(args.has("nodes"));
  EXPECT_EQ(args.get_int("nodes", 7), 7);
  EXPECT_EQ(args.get("nodes", "x"), "x");
  EXPECT_FALSE(args.get_bool("nodes", false));
}

TEST(Args, PositionalArgumentsCollected) {
  Args args = parse({"alpha", "--n=1", "beta"}, {"n"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Args, BoolRecognizesTrueForms) {
  Args args = parse({"--a=true", "--b=1", "--c=yes", "--d=false"},
                    {"a", "b", "c", "d"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_TRUE(args.get_bool("b", false));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(Csv, WritesCurve) {
  std::string path = ::testing::TempDir() + "/curve_test.csv";
  write_curve_csv(path, {{0.0, 0.1}, {0.5, 0.8}, {1.0, 1.0}});
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "delay_seconds,fraction");
  std::getline(in, line);
  EXPECT_EQ(line, "0,0.1");
  std::remove(path.c_str());
}

TEST(Csv, WritesCurveFamilyOnSharedGrid) {
  std::string path = ::testing::TempDir() + "/curves_test.csv";
  std::vector<std::vector<analysis::DeliveryTracker::CurvePoint>> curves{
      {{0.0, 0.0}, {1.0, 1.0}},
      {{0.0, 0.0}, {2.0, 0.5}},
  };
  write_curves_csv(path, {"fast", "slow"}, curves, 5);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "delay_seconds,fast,slow");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 5);
  std::remove(path.c_str());
}

TEST(Csv, AppendsSummaryWithHeaderOnce) {
  std::string path = ::testing::TempDir() + "/summary_test.csv";
  std::remove(path.c_str());
  ScenarioResult result;
  result.deliveries = 10;
  result.duplicates = 1;
  append_summary_csv(path, "gocast", 64, 0.0, result);
  append_summary_csv(path, "gossip", 64, 0.2, result);
  std::ifstream in(path);
  int lines = 0;
  std::string line;
  int headers = 0;
  while (std::getline(in, line)) {
    ++lines;
    if (line.rfind("protocol,", 0) == 0) ++headers;
  }
  EXPECT_EQ(lines, 3);
  EXPECT_EQ(headers, 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gocast::harness

// Determinism regression at experiment scale: a 512-node GoCast scenario run
// twice with the same seed must produce a byte-identical delivery-curve CSV
// and identical traffic accounting. This pins the hot-path machinery (event
// engine ordering, flat-map iteration, message pooling) to the invariant the
// whole evaluation rests on: a run is a pure function of its seed.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "harness/csv.h"
#include "harness/scenario.h"

namespace gocast {
namespace {

harness::ScenarioConfig large_config() {
  harness::ScenarioConfig config;
  config.protocol = harness::Protocol::kGoCast;
  config.node_count = 512;
  config.seed = 42;
  config.warmup = 40.0;
  config.message_count = 20;
  config.message_rate = 50.0;
  config.drain = 10.0;
  return config;
}

std::string file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(Determinism, LargeScenarioCurveCsvIsByteIdentical) {
  const std::string path_a = testing::TempDir() + "determinism_curve_a.csv";
  const std::string path_b = testing::TempDir() + "determinism_curve_b.csv";

  auto a = harness::run_scenario(large_config());
  harness::write_curve_csv(path_a, a.curve);
  auto b = harness::run_scenario(large_config());
  harness::write_curve_csv(path_b, b.curve);

  const std::string bytes_a = file_bytes(path_a);
  const std::string bytes_b = file_bytes(path_b);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, bytes_b) << "delivery curve diverged between runs";
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  // Traffic accounting must match to the byte as well.
  EXPECT_EQ(a.traffic.total_sent().messages, b.traffic.total_sent().messages);
  EXPECT_EQ(a.traffic.total_sent().bytes, b.traffic.total_sent().bytes);
  EXPECT_EQ(a.traffic.delivered(), b.traffic.delivered());
  EXPECT_EQ(a.traffic.lost(), b.traffic.lost());
  EXPECT_EQ(a.traffic.dropped_dead(), b.traffic.dropped_dead());
  EXPECT_EQ(a.traffic.aborted_bytes(), b.traffic.aborted_bytes());

  // And the derived report statistics (bitwise, not approximately).
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.report.delay.mean(), b.report.delay.mean());
  EXPECT_EQ(a.report.max_delay, b.report.max_delay);
  EXPECT_EQ(a.report.delivered_fraction, b.report.delivered_fraction);
}

}  // namespace
}  // namespace gocast

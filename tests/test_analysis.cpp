// Tests for the analysis layer: delivery tracker, graph analysis on known
// systems, reliability closed forms, link-stress summaries.
#include <gtest/gtest.h>

#include "analysis/delivery_tracker.h"
#include "analysis/graph_analysis.h"
#include "analysis/link_stress.h"
#include "analysis/reliability.h"
#include "gocast/system.h"

namespace gocast::analysis {
namespace {

core::DeliveryEvent event(NodeId node, MsgId id, SimTime inject, SimTime at) {
  return core::DeliveryEvent{node, id, inject, at, core::DeliveryPath::kTree};
}

TEST(DeliveryTracker, IgnoresUntrackedMessagesWhileNotRecording) {
  DeliveryTracker tracker(4);
  tracker.on_delivery(event(0, MsgId{0, 0}, 0.0, 0.1));
  EXPECT_EQ(tracker.message_count(), 0u);
  EXPECT_EQ(tracker.delivery_count(), 0u);
}

TEST(DeliveryTracker, RecordsOnceRecordingStarts) {
  DeliveryTracker tracker(4);
  tracker.set_recording(true);
  tracker.on_delivery(event(0, MsgId{0, 0}, 1.0, 1.0));
  tracker.on_delivery(event(1, MsgId{0, 0}, 1.0, 1.2));
  tracker.set_recording(false);
  // Known message: still recorded after recording stops.
  tracker.on_delivery(event(2, MsgId{0, 0}, 1.0, 1.5));
  EXPECT_EQ(tracker.message_count(), 1u);
  EXPECT_EQ(tracker.delivery_count(), 3u);
}

TEST(DeliveryTracker, ReportComputesDelaysAndLosses) {
  DeliveryTracker tracker(3);
  tracker.set_recording(true);
  // Message A delivered to all 3 nodes; message B only to node 0.
  tracker.on_delivery(event(0, MsgId{0, 0}, 0.0, 0.0));
  tracker.on_delivery(event(1, MsgId{0, 0}, 0.0, 0.1));
  tracker.on_delivery(event(2, MsgId{0, 0}, 0.0, 0.3));
  tracker.on_delivery(event(0, MsgId{1, 0}, 1.0, 1.0));

  auto report = tracker.report({0, 1, 2});
  EXPECT_EQ(report.messages, 2u);
  EXPECT_EQ(report.live_nodes, 3u);
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 4.0 / 6.0);
  EXPECT_EQ(report.undelivered_pairs, 2u);
  EXPECT_NEAR(report.nodes_with_all_messages, 1.0 / 3.0, 1e-12);
  // Delays are stored as float internally.
  EXPECT_NEAR(report.max_delay, 0.3, 1e-6);
  EXPECT_EQ(report.per_node_mean_delay.size(), 3u);
}

TEST(DeliveryTracker, ReportRestrictedToLiveNodes) {
  DeliveryTracker tracker(3);
  tracker.set_recording(true);
  tracker.on_delivery(event(0, MsgId{0, 0}, 0.0, 0.1));
  tracker.on_delivery(event(1, MsgId{0, 0}, 0.0, 0.5));
  auto report = tracker.report({0});  // node 1 considered dead
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 1.0);
  EXPECT_NEAR(report.max_delay, 0.1, 1e-6);
}

TEST(DeliveryTracker, NegativeDelayRejected) {
  DeliveryTracker tracker(2);
  tracker.set_recording(true);
  EXPECT_THROW(tracker.on_delivery(event(0, MsgId{0, 0}, 5.0, 4.0)),
               AssertionError);
}

TEST(DeliveryTracker, CurveIsMonotoneAndBounded) {
  DeliveryTracker tracker(2);
  tracker.set_recording(true);
  tracker.on_delivery(event(0, MsgId{0, 0}, 0.0, 0.1));
  tracker.on_delivery(event(1, MsgId{0, 0}, 0.0, 0.4));
  tracker.on_delivery(event(0, MsgId{0, 1}, 0.0, 0.2));
  auto curve = tracker.pair_delay_curve({0, 1}, 5);
  ASSERT_EQ(curve.size(), 5u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fraction, curve[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(curve.back().fraction, 3.0 / 4.0);  // one pair missing
}

TEST(GraphAnalysis, ComponentsOnHandMadeGraph) {
  OverlayGraph graph;
  graph.node_count = 5;
  graph.alive.assign(5, true);
  graph.adjacency.resize(5);
  auto link = [&](NodeId a, NodeId b) {
    graph.adjacency[a].push_back(b);
    graph.adjacency[b].push_back(a);
  };
  link(0, 1);
  link(1, 2);
  link(3, 4);

  auto stats = components(graph);
  EXPECT_EQ(stats.component_count, 2u);
  EXPECT_EQ(stats.largest_component, 3u);
  EXPECT_DOUBLE_EQ(stats.largest_fraction, 0.6);
}

TEST(GraphAnalysis, DeadNodesCutComponents) {
  OverlayGraph graph;
  graph.node_count = 3;
  graph.alive.assign(3, true);
  graph.adjacency.resize(3);
  graph.adjacency[0].push_back(1);
  graph.adjacency[1].push_back(0);
  graph.adjacency[1].push_back(2);
  graph.adjacency[2].push_back(1);
  graph.alive[1] = false;  // the cut vertex dies

  auto stats = components(graph);
  EXPECT_EQ(stats.component_count, 2u);
  EXPECT_EQ(stats.largest_component, 1u);
}

TEST(GraphAnalysis, DiameterOfPath) {
  OverlayGraph graph;
  graph.node_count = 6;
  graph.alive.assign(6, true);
  graph.adjacency.resize(6);
  for (NodeId i = 0; i + 1 < 6; ++i) {
    graph.adjacency[i].push_back(i + 1);
    graph.adjacency[i + 1].push_back(i);
  }
  Rng rng(1);
  EXPECT_EQ(estimate_diameter(graph, 4, rng), 5u);
}

TEST(GraphAnalysis, LinkCountIgnoresDeadEndpoints) {
  OverlayGraph graph;
  graph.node_count = 3;
  graph.alive = {true, true, false};
  graph.adjacency.resize(3);
  graph.adjacency[0] = {1, 2};
  graph.adjacency[1] = {0};
  graph.adjacency[2] = {0};
  EXPECT_EQ(graph.link_count(), 1u);
  EXPECT_EQ(graph.alive_count(), 2u);
}

TEST(Reliability, MatchesClosedForm) {
  // Spot values of e^{-e^{ln n - F}} for n=1024.
  EXPECT_NEAR(push_gossip_atomicity(1024, std::log(1024.0)), 1.0 / std::exp(1.0),
              1e-9);
  EXPECT_GT(push_gossip_atomicity(1024, 20), 0.999);
  EXPECT_LT(push_gossip_atomicity(1024, 2), 0.01);
}

TEST(Reliability, KMessagePowerLaw) {
  double one = push_gossip_atomicity(1024, 10);
  double thousand = push_gossip_atomicity_k(1024, 10, 1000);
  EXPECT_NEAR(thousand, std::pow(one, 1000.0), 1e-9);
}

TEST(Reliability, MinFanoutMatchesPaperFigure) {
  // The paper's Fig 1 text: reliability 0.5 for 1,000 messages needs
  // fanout ~15 in a 1,024-node system.
  EXPECT_EQ(min_fanout_for_atomicity(1024, 1000, 0.5), 15);
  EXPECT_EQ(min_fanout_for_atomicity(1024, 1, 0.5), 8);
}

TEST(LinkStress, SummarizesLoads) {
  Rng rng(3);
  net::Underlay underlay = net::Underlay::barabasi_albert(32, 2, rng.fork("t"));
  Rng assign = rng.fork("a");
  underlay.assign_sites(64, assign);

  net::TrafficStats traffic;
  traffic.record_site_pair(0, 40, 1000);
  traffic.record_site_pair(1, 50, 500);

  auto report = link_stress(underlay, traffic, 5);
  EXPECT_GT(report.loaded_links, 0u);
  EXPECT_GE(report.max_link_bytes, 1000.0);
  EXPECT_GE(report.total_bytes, 1500.0);
  ASSERT_FALSE(report.top_links.empty());
  EXPECT_DOUBLE_EQ(report.top_links.front(), report.max_link_bytes);
}

TEST(SnapshotOverlay, ReflectsSystemState) {
  core::SystemConfig config;
  config.node_count = 24;
  config.seed = 3;
  core::System system(config);
  system.start();
  system.run_for(30.0);

  auto graph = snapshot_overlay(system);
  EXPECT_EQ(graph.node_count, 24u);
  EXPECT_EQ(graph.alive_count(), 24u);
  // Adjacency is symmetric by construction.
  for (NodeId u = 0; u < 24; ++u) {
    for (NodeId v : graph.adjacency[u]) {
      auto& back = graph.adjacency[v];
      EXPECT_NE(std::find(back.begin(), back.end(), u), back.end());
    }
  }
}

}  // namespace
}  // namespace gocast::analysis

// Tests for the overlay neighbor table: degree accounting, C1/C3 queries,
// drop ordering.
#include "overlay/neighbor_table.h"

#include <gtest/gtest.h>

namespace gocast::overlay {
namespace {

net::PeerDegrees degrees(int rand_deg, int near_deg, float max_rtt = 0.0f) {
  net::PeerDegrees d;
  d.rand_degree = static_cast<std::uint16_t>(rand_deg);
  d.near_degree = static_cast<std::uint16_t>(near_deg);
  d.max_nearby_rtt = max_rtt;
  return d;
}

TEST(NeighborTable, AddRemoveAndDegrees) {
  NeighborTable table;
  EXPECT_TRUE(table.add(1, LinkKind::kRandom, 0.1, 0.0));
  EXPECT_TRUE(table.add(2, LinkKind::kNearby, 0.02, 0.0));
  EXPECT_TRUE(table.add(3, LinkKind::kNearby, 0.03, 0.0));
  EXPECT_EQ(table.rand_degree(), 1);
  EXPECT_EQ(table.near_degree(), 2);
  EXPECT_EQ(table.degree(), 3);

  EXPECT_FALSE(table.add(1, LinkKind::kNearby, 0.5, 1.0));  // no overwrite
  EXPECT_EQ(table.rand_degree(), 1);

  auto removed = table.remove(2);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->kind, LinkKind::kNearby);
  EXPECT_EQ(table.near_degree(), 1);
  EXPECT_FALSE(table.remove(2).has_value());
}

TEST(NeighborTable, FindAndUpdate) {
  NeighborTable table;
  table.add(7, LinkKind::kNearby, 0.05, 1.0);
  ASSERT_NE(table.find(7), nullptr);
  EXPECT_EQ(table.find(9), nullptr);

  table.update_degrees(7, degrees(1, 6), 2.0);
  EXPECT_EQ(table.find(7)->degrees.near_degree, 6);
  EXPECT_DOUBLE_EQ(table.find(7)->last_heard, 2.0);

  table.update_rtt(7, 0.04);
  EXPECT_DOUBLE_EQ(table.find(7)->rtt, 0.04);

  // Updates for unknown peers are ignored.
  table.update_degrees(9, degrees(1, 1), 3.0);
  table.update_rtt(9, 0.01);
}

TEST(NeighborTable, MaxNearbyRttIgnoresRandomLinks) {
  NeighborTable table;
  table.add(1, LinkKind::kRandom, 0.30, 0.0);
  table.add(2, LinkKind::kNearby, 0.05, 0.0);
  table.add(3, LinkKind::kNearby, 0.08, 0.0);
  EXPECT_DOUBLE_EQ(table.max_nearby_rtt(), 0.08);
}

TEST(NeighborTable, MaxNearbyRttEmptyIsZero) {
  NeighborTable table;
  table.add(1, LinkKind::kRandom, 0.30, 0.0);
  EXPECT_DOUBLE_EQ(table.max_nearby_rtt(), 0.0);
}

TEST(NeighborTable, WorstReplaceableRespectsC1Floor) {
  NeighborTable table;
  table.add(1, LinkKind::kNearby, 0.20, 0.0);  // longest link
  table.add(2, LinkKind::kNearby, 0.05, 0.0);
  table.update_degrees(1, degrees(1, 3), 1.0);  // too low: below C_near-1=4
  table.update_degrees(2, degrees(1, 5), 1.0);

  auto victim = table.worst_replaceable_nearby(4);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);  // node 1 excluded despite longer RTT

  table.update_degrees(1, degrees(1, 4), 2.0);
  victim = table.worst_replaceable_nearby(4);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1u);  // now eligible and longest
}

TEST(NeighborTable, WorstReplaceableNoneWhenAllTooLow) {
  NeighborTable table;
  table.add(1, LinkKind::kNearby, 0.20, 0.0);
  table.update_degrees(1, degrees(0, 1), 1.0);
  EXPECT_FALSE(table.worst_replaceable_nearby(4).has_value());
}

TEST(NeighborTable, DroppableNearbySortedByDescendingRtt) {
  NeighborTable table;
  table.add(1, LinkKind::kNearby, 0.05, 0.0);
  table.add(2, LinkKind::kNearby, 0.30, 0.0);
  table.add(3, LinkKind::kNearby, 0.10, 0.0);
  table.add(4, LinkKind::kRandom, 0.50, 0.0);
  for (NodeId id : {1u, 2u, 3u}) table.update_degrees(id, degrees(1, 5), 1.0);

  auto order = table.droppable_nearby(4);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 1u);
}

TEST(NeighborTable, RandomWithDegreeAbove) {
  NeighborTable table;
  table.add(1, LinkKind::kRandom, 0.1, 0.0);
  table.add(2, LinkKind::kRandom, 0.1, 0.0);
  table.add(3, LinkKind::kNearby, 0.1, 0.0);
  table.update_degrees(1, degrees(2, 5), 1.0);
  table.update_degrees(2, degrees(1, 5), 1.0);
  table.update_degrees(3, degrees(9, 5), 1.0);  // nearby: never listed

  auto over = table.random_with_degree_above(1);
  ASSERT_EQ(over.size(), 1u);
  EXPECT_EQ(over[0], 1u);
}

TEST(NeighborTable, IdsAreSortedAndFiltered) {
  NeighborTable table;
  table.add(9, LinkKind::kRandom, 0.1, 0.0);
  table.add(2, LinkKind::kNearby, 0.1, 0.0);
  table.add(5, LinkKind::kNearby, 0.1, 0.0);
  EXPECT_EQ(table.ids(), (std::vector<NodeId>{2, 5, 9}));
  EXPECT_EQ(table.ids_of_kind(LinkKind::kNearby), (std::vector<NodeId>{2, 5}));
  EXPECT_EQ(table.ids_of_kind(LinkKind::kRandom), (std::vector<NodeId>{9}));
}

TEST(NeighborTable, MeanRttByKind) {
  NeighborTable table;
  table.add(1, LinkKind::kRandom, 0.2, 0.0);
  table.add(2, LinkKind::kNearby, 0.04, 0.0);
  table.add(3, LinkKind::kNearby, 0.06, 0.0);
  EXPECT_DOUBLE_EQ(table.mean_rtt_of_kind(LinkKind::kNearby), 0.05);
  EXPECT_DOUBLE_EQ(table.mean_rtt_of_kind(LinkKind::kRandom), 0.2);
  EXPECT_NEAR(table.mean_rtt(), 0.1, 1e-12);
  EXPECT_DOUBLE_EQ(NeighborTable{}.mean_rtt(), 0.0);
}

}  // namespace
}  // namespace gocast::overlay

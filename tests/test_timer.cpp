// Unit tests for PeriodicTimer: periodic firing, stop/start semantics,
// re-arm-before-callback ordering, destruction safety.
#include "sim/timer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace gocast::sim {
namespace {

TEST(PeriodicTimer, FiresEveryPeriodAfterStart) {
  Engine engine;
  std::vector<double> fired;
  PeriodicTimer timer(engine, 1.0, [&] { fired.push_back(engine.now()); });
  timer.start();
  engine.run_until(3.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(PeriodicTimer, FirstDelayOverride) {
  Engine engine;
  std::vector<double> fired;
  PeriodicTimer timer(engine, 1.0, [&] { fired.push_back(engine.now()); });
  timer.start(0.25);
  engine.run_until(2.5);
  EXPECT_EQ(fired, (std::vector<double>{0.25, 1.25, 2.25}));
}

TEST(PeriodicTimer, StopPreventsFurtherFirings) {
  Engine engine;
  int count = 0;
  PeriodicTimer timer(engine, 1.0, [&] { ++count; });
  timer.start();
  engine.run_until(2.5);
  timer.stop();
  engine.run_until(10.0);
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(timer.running());
}

TEST(PeriodicTimer, StopFromInsideCallbackWins) {
  Engine engine;
  int count = 0;
  PeriodicTimer timer(engine, 1.0, [&] {
    ++count;
    // stop() must cancel the re-armed event.
  });
  // Rebind: need access to the timer inside its own callback.
  PeriodicTimer self_stopping(engine, 1.0, [&] {
    ++count;
    self_stopping.stop();
  });
  self_stopping.start();
  engine.run_until(5.0);
  EXPECT_EQ(count, 1);
  (void)timer;
}

TEST(PeriodicTimer, RestartResetsPhase) {
  Engine engine;
  std::vector<double> fired;
  PeriodicTimer timer(engine, 1.0, [&] { fired.push_back(engine.now()); });
  timer.start();
  engine.run_until(1.5);       // fires at 1.0
  timer.start(0.2);            // restart: next at 1.7
  engine.run_until(2.0);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 1.7}));
}

TEST(PeriodicTimer, DestructionCancelsPendingEvent) {
  Engine engine;
  int count = 0;
  {
    PeriodicTimer timer(engine, 1.0, [&] { ++count; });
    timer.start();
  }
  engine.run_until(10.0);
  EXPECT_EQ(count, 0);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(PeriodicTimer, SetPeriodTakesEffectOnNextArm) {
  Engine engine;
  std::vector<double> fired;
  PeriodicTimer timer(engine, 1.0, [&] { fired.push_back(engine.now()); });
  timer.start();
  engine.run_until(1.0);  // fires at 1.0, re-armed for 2.0 with old period
  timer.set_period(0.5);
  engine.run_until(3.0);
  // 2.0 (already armed), then 2.5, 3.0 with the new period.
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0, 2.5, 3.0}));
}

TEST(PeriodicTimer, InvalidPeriodThrows) {
  Engine engine;
  EXPECT_THROW(PeriodicTimer(engine, 0.0, [] {}), gocast::AssertionError);
  EXPECT_THROW(PeriodicTimer(engine, -1.0, [] {}), gocast::AssertionError);
}

TEST(PeriodicTimer, ManyTimersInterleaveDeterministically) {
  Engine engine;
  std::vector<int> order;
  std::vector<std::unique_ptr<PeriodicTimer>> timers;
  for (int i = 0; i < 5; ++i) {
    timers.push_back(std::make_unique<PeriodicTimer>(
        engine, 1.0, [&order, i] { order.push_back(i); }));
  }
  for (auto& t : timers) t->start();  // all fire at t=1, in start order
  engine.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace gocast::sim

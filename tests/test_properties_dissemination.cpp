// Property-based tests of end-to-end dissemination under adverse
// conditions, swept over failure fractions, packet-loss rates, and seeds:
//   D1. every multicast reaches every live node (completeness)
//   D2. delivery delays are bounded by the recovery machinery
//   D3. no delivery happens twice (the store deduplicates)
//   D4. dead nodes deliver nothing after their failure time
#include <gtest/gtest.h>

#include "analysis/delivery_tracker.h"
#include "gocast/system.h"

namespace gocast {
namespace {

struct AdverseCase {
  std::uint64_t seed;
  std::size_t nodes;
  double fail_fraction;
  double loss;
  bool freeze_repair;
};

std::string adverse_name(const ::testing::TestParamInfo<AdverseCase>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.nodes) +
         "_f" + std::to_string(static_cast<int>(p.fail_fraction * 100)) +
         "_l" + std::to_string(static_cast<int>(p.loss * 100)) +
         (p.freeze_repair ? "_frozen" : "_repair");
}

class DisseminationPropertyTest
    : public ::testing::TestWithParam<AdverseCase> {};

TEST_P(DisseminationPropertyTest, D1toD4_CompleteExactlyOnceDelivery) {
  const AdverseCase& p = GetParam();

  core::SystemConfig config;
  config.node_count = p.nodes;
  config.seed = p.seed;
  config.net.loss_probability = p.loss;
  core::System system(config);

  analysis::DeliveryTracker tracker(p.nodes);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(100.0);

  if (p.fail_fraction > 0.0) {
    system.fail_random_fraction(p.fail_fraction);
    if (p.freeze_repair) system.freeze_all();
    system.run_for(1.0);
  }

  tracker.set_recording(true);
  for (int i = 0; i < 8; ++i) {
    system.node(system.random_alive_node()).multicast(128);
    system.run_for(0.25);
  }
  system.run_for(45.0);

  auto alive = system.alive_nodes();
  auto report = tracker.report(alive);

  // D1: completeness to live nodes.
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 1.0)
      << report.undelivered_pairs << " pairs missing";

  // D2: recovery bounded (generous: retries + gossip rounds).
  EXPECT_LT(report.max_delay, 40.0);

  // D3: deliveries unique per (node, message): tracker counted at most one
  // per pair if delivered_fraction is exactly 1 and counts line up.
  EXPECT_EQ(tracker.delivery_count(),
            static_cast<std::uint64_t>(report.messages) * alive.size());

  // D4: dead nodes are silent.
  for (NodeId id = 0; id < p.nodes; ++id) {
    if (!system.network().alive(id)) {
      EXPECT_EQ(system.node(id).deliveries_count(), 0u) << "node " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Adverse, DisseminationPropertyTest,
    ::testing::Values(
        AdverseCase{301, 48, 0.0, 0.0, false},   // healthy
        AdverseCase{302, 48, 0.0, 0.05, false},  // lossy
        AdverseCase{303, 48, 0.0, 0.20, false},  // very lossy
        AdverseCase{304, 48, 0.20, 0.0, true},   // Fig 3b regime
        AdverseCase{305, 48, 0.20, 0.0, false},  // failures + repair
        AdverseCase{306, 64, 0.25, 0.05, true},  // failures + loss, frozen
        AdverseCase{307, 64, 0.25, 0.05, false},
        AdverseCase{308, 96, 0.10, 0.10, false},
        AdverseCase{309, 48, 0.30, 0.0, true},
        AdverseCase{310, 48, 0.30, 0.0, false}),
    adverse_name);

// Gossip-only variants must also achieve completeness (they are the
// "proximity overlay" / "random overlay" baselines).
struct GossipOnlyCase {
  std::uint64_t seed;
  int c_rand;
  int c_near;
};

class GossipOnlyPropertyTest : public ::testing::TestWithParam<GossipOnlyCase> {};

TEST_P(GossipOnlyPropertyTest, CompletenessWithoutTree) {
  const GossipOnlyCase& p = GetParam();
  core::SystemConfig config;
  config.node_count = 48;
  config.seed = p.seed;
  config.node.dissemination.use_tree = false;
  config.node.overlay.target_rand_degree = p.c_rand;
  config.node.overlay.target_near_degree = p.c_near;
  if (p.c_near == 0) config.node.overlay.maintain_nearby = false;

  core::System system(config);
  analysis::DeliveryTracker tracker(48);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(80.0);
  tracker.set_recording(true);
  for (int i = 0; i < 4; ++i) {
    system.node(system.random_alive_node()).multicast(64);
  }
  system.run_for(30.0);
  EXPECT_DOUBLE_EQ(tracker.report(system.alive_nodes()).delivered_fraction, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GossipOnlyPropertyTest,
    ::testing::Values(GossipOnlyCase{401, 1, 5}, GossipOnlyCase{402, 6, 0},
                      GossipOnlyCase{403, 2, 4}),
    [](const ::testing::TestParamInfo<GossipOnlyCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_r" +
             std::to_string(info.param.c_rand) + "_k" +
             std::to_string(info.param.c_near);
    });

}  // namespace
}  // namespace gocast

// Tests for the triangulation RTT estimator and the RTT cache.
#include "coord/triangulation.h"

#include <gtest/gtest.h>

#include "coord/rtt_cache.h"

namespace gocast::coord {
namespace {

using membership::empty_landmarks;
using membership::LandmarkVector;

TEST(Triangulation, NoCommonSlotsGivesNothing) {
  LandmarkVector a = empty_landmarks();
  LandmarkVector b = empty_landmarks();
  a[0] = 0.1f;
  b[1] = 0.2f;
  EXPECT_FALSE(estimate_rtt(a, b).has_value());
  EXPECT_EQ(estimate_rtt_or_never(a, b), kNever);
}

TEST(Triangulation, SingleLandmarkBounds) {
  LandmarkVector a = empty_landmarks();
  LandmarkVector b = empty_landmarks();
  a[2] = 0.10f;
  b[2] = 0.04f;
  auto est = estimate_rtt(a, b);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->lower, 0.06, 1e-6);  // |0.10 - 0.04|
  EXPECT_NEAR(est->upper, 0.14, 1e-6);  // 0.10 + 0.04
  EXPECT_NEAR(est->midpoint(), 0.10, 1e-6);
}

TEST(Triangulation, MultipleLandmarksTightenBounds) {
  LandmarkVector a = empty_landmarks();
  LandmarkVector b = empty_landmarks();
  a[0] = 0.10f;
  b[0] = 0.04f;  // bounds [0.06, 0.14]
  a[1] = 0.02f;
  b[1] = 0.03f;  // bounds [0.01, 0.05] -> intersect to [0.06, 0.05]?!
  // Inconsistent measurements collapse to the tighter upper bound.
  auto est = estimate_rtt(a, b);
  ASSERT_TRUE(est.has_value());
  EXPECT_LE(est->lower, est->upper);
  EXPECT_NEAR(est->upper, 0.05, 1e-6);
}

TEST(Triangulation, ExactWhenColinear) {
  // Node A at 0, landmark at 50 ms, node B at 100 ms (one-way chain):
  // RTTs: A->L = 0.1, B->L = 0.1; true A<->B RTT = 0.2.
  LandmarkVector a = empty_landmarks();
  LandmarkVector b = empty_landmarks();
  a[0] = 0.1f;
  b[0] = 0.1f;
  auto est = estimate_rtt(a, b);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->upper, 0.2, 1e-6);
  EXPECT_NEAR(est->lower, 0.0, 1e-6);
  EXPECT_NEAR(est->midpoint(), 0.1, 1e-6);
}

TEST(Triangulation, OrdersNearVsFarCandidates) {
  // The estimator's real job: rank candidates. A candidate whose landmark
  // vector is close to mine must rank before a distant one.
  LandmarkVector mine = empty_landmarks();
  LandmarkVector near = empty_landmarks();
  LandmarkVector far = empty_landmarks();
  for (std::size_t i = 0; i < 4; ++i) {
    mine[i] = 0.05f + 0.01f * static_cast<float>(i);
    near[i] = mine[i] + 0.005f;       // almost identical vector
    far[i] = mine[i] + 0.15f;         // systematically distant
  }
  EXPECT_LT(estimate_rtt_or_never(mine, near),
            estimate_rtt_or_never(mine, far));
}

TEST(RttCache, RecordAndQuery) {
  RttCache cache;
  EXPECT_FALSE(cache.has(3));
  cache.record(3, 0.08, 12.0);
  ASSERT_TRUE(cache.has(3));
  EXPECT_DOUBLE_EQ(*cache.rtt(3), 0.08);
  EXPECT_DOUBLE_EQ(*cache.measured_at(3), 12.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RttCache, OverwriteKeepsLatest) {
  RttCache cache;
  cache.record(3, 0.08, 12.0);
  cache.record(3, 0.05, 20.0);
  EXPECT_DOUBLE_EQ(*cache.rtt(3), 0.05);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RttCache, Forget) {
  RttCache cache;
  cache.record(3, 0.08, 12.0);
  cache.forget(3);
  EXPECT_FALSE(cache.has(3));
  EXPECT_FALSE(cache.rtt(3).has_value());
}

}  // namespace
}  // namespace gocast::coord

// Tests for the push-gossip baselines ("gossip" and "no-wait gossip").
#include "baselines/push_gossip.h"

#include <gtest/gtest.h>

#include "analysis/delivery_tracker.h"

namespace gocast::baselines {
namespace {

PushGossipSystemConfig small_config(std::size_t n, std::uint64_t seed = 5) {
  PushGossipSystemConfig config;
  config.node_count = n;
  config.seed = seed;
  return config;
}

TEST(PushGossip, HighFanoutDeliversEverywhere) {
  PushGossipSystemConfig config = small_config(48);
  config.node.fanout = 10;  // well above ln(48) ~ 3.9
  PushGossipSystem system(config);
  analysis::DeliveryTracker tracker(48);
  system.set_delivery_hook(tracker.hook());
  system.start();
  tracker.set_recording(true);
  system.node(0).multicast(256);
  system.run_for(30.0);

  auto report = tracker.report(system.alive_nodes());
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 1.0);
}

TEST(PushGossip, LowFanoutLosesSomePairsOverManyMessages) {
  PushGossipSystemConfig config = small_config(96, 9);
  config.node.fanout = 3;  // below ln(96) ~ 4.6: losses expected
  PushGossipSystem system(config);
  analysis::DeliveryTracker tracker(96);
  system.set_delivery_hook(tracker.hook());
  system.start();
  tracker.set_recording(true);
  for (int i = 0; i < 30; ++i) {
    system.node(system.random_alive_node()).multicast(64);
    system.run_for(0.05);
  }
  system.run_for(30.0);

  auto report = tracker.report(system.alive_nodes());
  EXPECT_LT(report.delivered_fraction, 1.0);
  EXPECT_GT(report.delivered_fraction, 0.5);
}

TEST(PushGossip, EachIdGossipedToFanoutNodes) {
  PushGossipSystemConfig config = small_config(32);
  config.node.fanout = 5;
  PushGossipSystem system(config);
  system.start();
  system.node(0).multicast(64);
  system.run_for(1.0);  // 10 gossip periods: plenty for 5 sends
  EXPECT_EQ(system.node(0).gossips_sent(), 5u);
}

TEST(PushGossip, NoWaitGossipsImmediately) {
  PushGossipSystemConfig config = small_config(32);
  config.node.fanout = 5;
  config.node.no_wait = true;
  PushGossipSystem system(config);
  system.start();
  system.node(0).multicast(64);
  // No time has passed: the fanout digests are already scheduled/sent.
  EXPECT_EQ(system.node(0).gossips_sent(), 5u);
}

TEST(PushGossip, NoWaitIsFasterThanPeriodic) {
  auto mean_delay = [](bool no_wait) {
    PushGossipSystemConfig config = small_config(64, 21);
    config.node.fanout = 6;
    config.node.no_wait = no_wait;
    PushGossipSystem system(config);
    analysis::DeliveryTracker tracker(64);
    system.set_delivery_hook(tracker.hook());
    system.start();
    tracker.set_recording(true);
    for (int i = 0; i < 5; ++i) {
      system.node(system.random_alive_node()).multicast(64);
      system.run_for(0.2);
    }
    system.run_for(30.0);
    return tracker.report(system.alive_nodes()).delay.mean();
  };
  EXPECT_LT(mean_delay(true), mean_delay(false));
}

TEST(PushGossip, DuplicateDataCounted) {
  PushGossipSystemConfig config = small_config(16);
  config.node.fanout = 8;
  PushGossipSystem system(config);
  system.start();
  system.node(0).multicast(64);
  system.run_for(20.0);
  // Everyone delivered exactly once (pull model prevents duplicate data
  // unless pulls race; tolerate a couple).
  std::uint64_t duplicates = 0;
  for (NodeId id = 0; id < 16; ++id) {
    duplicates += system.node(id).duplicates_count();
  }
  EXPECT_LE(duplicates, 3u);
}

TEST(PushGossip, FailedNodesDoNotBlockOthers) {
  PushGossipSystemConfig config = small_config(48, 23);
  config.node.fanout = 8;
  PushGossipSystem system(config);
  analysis::DeliveryTracker tracker(48);
  system.set_delivery_hook(tracker.hook());
  system.start();
  auto killed = system.fail_random_fraction(0.25);
  EXPECT_EQ(killed.size(), 12u);
  tracker.set_recording(true);
  system.node(system.random_alive_node()).multicast(64);
  system.run_for(30.0);

  auto report = tracker.report(system.alive_nodes());
  EXPECT_GT(report.delivered_fraction, 0.95);
}

TEST(PushGossip, GarbageCollectionBoundsStore) {
  PushGossipSystemConfig config = small_config(8);
  config.node.fanout = 3;
  config.node.gc_payload_after = 1.0;
  config.node.gc_record_after = 2.0;
  config.node.gc_sweep_period = 0.25;
  PushGossipSystem system(config);
  system.start();
  system.node(0).multicast(64);
  system.run_for(10.0);
  // After GC the message can be re-accepted nowhere; counters stay sane.
  EXPECT_GE(system.node(0).deliveries_count(), 1u);
}

TEST(PushGossip, MulticastFromDeadNodeThrows) {
  PushGossipSystemConfig config = small_config(8);
  PushGossipSystem system(config);
  system.start();
  system.node(3).kill();
  EXPECT_THROW(system.node(3).multicast(64), AssertionError);
}

}  // namespace
}  // namespace gocast::baselines

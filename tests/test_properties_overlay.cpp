// Property-based tests of the overlay invariants, swept over seeds, system
// sizes, and degree configurations with parameterized gtest.
//
// Invariants checked after adaptation:
//   P1. the overlay (with >=1 random link) is connected
//   P2. random degrees lie in {C_rand, C_rand+1} (hard bound: cap + slack)
//   P3. nearby degrees lie within [C_near-2, C_near+1] modulo in-flight
//       handshakes (the paper's stable band is {C_near, C_near+1})
//   P4. no node lists itself or a dead node as a neighbor
//   P5. neighbor tables are symmetric up to in-flight handshakes
//   P6. nearby links are shorter on average than random links
#include <gtest/gtest.h>

#include "analysis/graph_analysis.h"
#include "gocast/system.h"

namespace gocast {
namespace {

struct OverlayCase {
  std::uint64_t seed;
  std::size_t nodes;
  int c_rand;
  int c_near;
};

std::string case_name(const ::testing::TestParamInfo<OverlayCase>& info) {
  const auto& p = info.param;
  return "seed" + std::to_string(p.seed) + "_n" + std::to_string(p.nodes) +
         "_r" + std::to_string(p.c_rand) + "_k" + std::to_string(p.c_near);
}

class OverlayPropertyTest : public ::testing::TestWithParam<OverlayCase> {
 protected:
  void SetUp() override {
    const OverlayCase& p = GetParam();
    core::SystemConfig config;
    config.node_count = p.nodes;
    config.seed = p.seed;
    config.node.overlay.target_rand_degree = p.c_rand;
    config.node.overlay.target_near_degree = p.c_near;
    if (p.c_near == 0) config.node.overlay.maintain_nearby = false;
    config.bootstrap_links_per_node =
        static_cast<std::size_t>((p.c_rand + p.c_near) / 2);
    system_ = std::make_unique<core::System>(config);
    system_->start();
    system_->run_for(120.0);
  }

  std::unique_ptr<core::System> system_;
};

TEST_P(OverlayPropertyTest, P1_Connected) {
  if (GetParam().c_rand == 0) GTEST_SKIP() << "no random links: may partition";
  auto graph = analysis::snapshot_overlay(*system_);
  EXPECT_DOUBLE_EQ(analysis::components(graph).largest_fraction, 1.0);
}

TEST_P(OverlayPropertyTest, P2_RandomDegreesInStableBand) {
  const OverlayCase& p = GetParam();
  std::size_t outside = 0;
  for (NodeId id = 0; id < system_->size(); ++id) {
    int degree = system_->node(id).overlay().rand_degree();
    EXPECT_LE(degree, p.c_rand + 5) << "hard cap violated at node " << id;
    if (degree < p.c_rand || degree > p.c_rand + 1) ++outside;
  }
  // The stable band is {C, C+1}; allow a small transient fraction.
  EXPECT_LE(outside, system_->size() / 20);
}

TEST_P(OverlayPropertyTest, P3_NearbyDegreesInStableBand) {
  const OverlayCase& p = GetParam();
  if (p.c_near == 0) GTEST_SKIP();
  std::size_t outside = 0;
  for (NodeId id = 0; id < system_->size(); ++id) {
    int degree = system_->node(id).overlay().near_degree();
    EXPECT_LE(degree, p.c_near + 5) << "hard cap violated at node " << id;
    EXPECT_GE(degree, p.c_near - 2) << "C1 floor violated at node " << id;
    if (degree < p.c_near || degree > p.c_near + 1) ++outside;
  }
  EXPECT_LE(outside, system_->size() / 10);
}

TEST_P(OverlayPropertyTest, P4_NoSelfOrDeadNeighbors) {
  for (NodeId id = 0; id < system_->size(); ++id) {
    for (NodeId peer : system_->node(id).overlay().neighbor_ids()) {
      EXPECT_NE(peer, id);
      EXPECT_LT(peer, system_->size());
      EXPECT_TRUE(system_->network().alive(peer));
    }
  }
}

TEST_P(OverlayPropertyTest, P5_TablesMostlySymmetric) {
  std::size_t asymmetric = 0;
  std::size_t total = 0;
  for (NodeId id = 0; id < system_->size(); ++id) {
    for (NodeId peer : system_->node(id).overlay().neighbor_ids()) {
      ++total;
      if (!system_->node(peer).overlay().is_neighbor(id)) ++asymmetric;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_LE(asymmetric, total / 50 + 2) << "too many half-open links";
}

TEST_P(OverlayPropertyTest, P6_NearbyLinksShorterThanRandom) {
  const OverlayCase& p = GetParam();
  if (p.c_near == 0 || p.c_rand == 0) GTEST_SKIP();
  double nearby = analysis::mean_link_latency_of_kind(
      *system_, overlay::LinkKind::kNearby);
  double random = analysis::mean_link_latency_of_kind(
      *system_, overlay::LinkKind::kRandom);
  ASSERT_GT(nearby, 0.0);
  ASSERT_GT(random, 0.0);
  EXPECT_LT(nearby, random * 0.7);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OverlayPropertyTest,
    ::testing::Values(
        OverlayCase{101, 48, 1, 5},   //
        OverlayCase{102, 48, 1, 5},   //
        OverlayCase{103, 96, 1, 5},   //
        OverlayCase{104, 96, 2, 4},   //
        OverlayCase{105, 96, 4, 2},   //
        OverlayCase{106, 96, 6, 0},   // pure random overlay
        OverlayCase{107, 64, 0, 6},   // pure proximity overlay
        OverlayCase{108, 128, 1, 5},  //
        OverlayCase{109, 64, 1, 3},   //
        OverlayCase{110, 64, 2, 6}),
    case_name);

}  // namespace
}  // namespace gocast

// Unit tests for statistics utilities.
#include "common/stats.h"

#include <gtest/gtest.h>

#include "common/assert.h"

#include <cmath>

namespace gocast {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(Summary, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, MergeMatchesCombinedStream) {
  Summary all;
  Summary a;
  Summary b;
  for (int i = 0; i < 100; ++i) {
    double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Summary, MergeWithEmpty) {
  Summary a;
  a.add(1.0);
  Summary empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Percentiles, MedianAndExtremes) {
  Percentiles p({5.0, 1.0, 3.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(p.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
  EXPECT_DOUBLE_EQ(p.at(1.0), 5.0);
}

TEST(Percentiles, InterpolatesBetweenRanks) {
  Percentiles p({0.0, 10.0});
  EXPECT_DOUBLE_EQ(p.at(0.25), 2.5);
  EXPECT_DOUBLE_EQ(p.at(0.5), 5.0);
}

TEST(Percentiles, SingleSample) {
  Percentiles p({7.0});
  EXPECT_DOUBLE_EQ(p.at(0.0), 7.0);
  EXPECT_DOUBLE_EQ(p.at(0.9), 7.0);
}

TEST(Percentiles, OutOfRangeThrows) {
  Percentiles p({1.0, 2.0});
  EXPECT_THROW((void)p.at(-0.1), AssertionError);
  EXPECT_THROW((void)p.at(1.1), AssertionError);
}

TEST(Cdf, FractionLeq) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_leq(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_leq(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_leq(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_leq(10.0), 1.0);
}

TEST(Cdf, CurveIsMonotone) {
  Cdf cdf({0.1, 0.5, 0.5, 0.9, 2.0, 3.0});
  auto curve = cdf.curve(11);
  ASSERT_EQ(curve.size(), 11u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].fraction, curve[i - 1].fraction);
    EXPECT_GE(curve[i].x, curve[i - 1].x);
  }
  EXPECT_DOUBLE_EQ(curve.back().fraction, 1.0);
}

TEST(Histogram, BinsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.count_in_bin(0), 2u);
  EXPECT_EQ(h.count_in_bin(9), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 4.0);
}

TEST(IntDistribution, CountsAndFractions) {
  IntDistribution d;
  for (long v : {6, 6, 6, 7, 7, 5}) d.add(v);
  EXPECT_EQ(d.total(), 6u);
  EXPECT_EQ(d.count(6), 3u);
  EXPECT_DOUBLE_EQ(d.fraction(6), 0.5);
  EXPECT_DOUBLE_EQ(d.fraction(7), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(d.fraction(100), 0.0);
  EXPECT_EQ(d.min(), 5);
  EXPECT_EQ(d.max(), 7);
  EXPECT_NEAR(d.mean(), 37.0 / 6.0, 1e-12);
}

TEST(IntDistribution, FractionLeqIsCumulative) {
  IntDistribution d;
  for (long v : {1, 2, 2, 3}) d.add(v);
  EXPECT_DOUBLE_EQ(d.fraction_leq(0), 0.0);
  EXPECT_DOUBLE_EQ(d.fraction_leq(1), 0.25);
  EXPECT_DOUBLE_EQ(d.fraction_leq(2), 0.75);
  EXPECT_DOUBLE_EQ(d.fraction_leq(3), 1.0);
  EXPECT_DOUBLE_EQ(d.fraction_leq(99), 1.0);
}

}  // namespace
}  // namespace gocast

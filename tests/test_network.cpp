// Tests for the simulated network: latency-correct delivery, failure
// semantics (silent drop + TCP-reset notification), loss injection, traffic
// accounting, and intra-site latency.
#include "net/network.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/assert.h"
#include "net/trace.h"

namespace gocast::net {
namespace {

struct TestMsg final : Message {
  explicit TestMsg(std::size_t bytes = 100)
      : Message(MsgKind::kOther, 999), bytes(bytes) {}
  std::size_t bytes;
  std::size_t wire_size() const override { return bytes; }
};

class RecordingEndpoint final : public Endpoint {
 public:
  struct Received {
    NodeId from;
    SimTime at;
  };
  explicit RecordingEndpoint(sim::Engine& engine) : engine_(engine) {}

  void handle_message(NodeId from, const MessagePtr& msg) override {
    (void)msg;
    received.push_back({from, engine_.now()});
  }
  void handle_send_failure(NodeId to, const MessagePtr& msg) override {
    (void)msg;
    failures.push_back({to, engine_.now()});
  }

  std::vector<Received> received;
  std::vector<Received> failures;

 private:
  sim::Engine& engine_;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : network_(engine_, std::make_shared<RingLatencyModel>(8, 0.08),
                 NetworkConfig{}, Rng(1)) {
    for (int i = 0; i < 4; ++i) {
      NodeId id = network_.add_node(static_cast<std::uint32_t>(i * 2));
      endpoints_.push_back(std::make_unique<RecordingEndpoint>(engine_));
      network_.set_endpoint(id, endpoints_.back().get());
    }
  }

  sim::Engine engine_;
  Network network_;
  std::vector<std::unique_ptr<RecordingEndpoint>> endpoints_;
};

TEST_F(NetworkTest, DeliversWithOneWayLatency) {
  network_.send(0, 1, std::make_shared<TestMsg>());
  engine_.run();
  ASSERT_EQ(endpoints_[1]->received.size(), 1u);
  EXPECT_EQ(endpoints_[1]->received[0].from, 0u);
  // Sites 0 and 2 on an 8-site ring with 0.08 max: arc 2 of 4 -> 0.04.
  EXPECT_DOUBLE_EQ(endpoints_[1]->received[0].at, 0.04);
}

TEST_F(NetworkTest, RttIsTwiceOneWay) {
  EXPECT_DOUBLE_EQ(network_.rtt(0, 1), 2.0 * network_.one_way(0, 1));
  EXPECT_DOUBLE_EQ(network_.one_way(2, 2), 0.0);
}

TEST_F(NetworkTest, SendToSelfThrows) {
  EXPECT_THROW(network_.send(1, 1, std::make_shared<TestMsg>()), AssertionError);
}

TEST_F(NetworkTest, DeadReceiverDropsAndNotifiesSender) {
  network_.fail_node(1);
  network_.send(0, 1, std::make_shared<TestMsg>());
  engine_.run();
  EXPECT_TRUE(endpoints_[1]->received.empty());
  ASSERT_EQ(endpoints_[0]->failures.size(), 1u);
  EXPECT_EQ(endpoints_[0]->failures[0].from, 1u);  // "to" echoed
  // Reset comes back one RTT after the send.
  EXPECT_DOUBLE_EQ(endpoints_[0]->failures[0].at, 2.0 * network_.one_way(0, 1));
  EXPECT_EQ(network_.traffic().dropped_dead(), 1u);
}

TEST_F(NetworkTest, DeadSenderSendsNothing) {
  network_.fail_node(0);
  network_.send(0, 1, std::make_shared<TestMsg>());
  engine_.run();
  EXPECT_TRUE(endpoints_[1]->received.empty());
  EXPECT_EQ(network_.traffic().sender_dead(), 1u);
  EXPECT_EQ(network_.traffic().total_sent().messages, 0u);
}

TEST_F(NetworkTest, MessageInFlightSurvivesSenderDeath) {
  network_.send(0, 1, std::make_shared<TestMsg>());
  network_.fail_node(0);  // dies right after sending
  engine_.run();
  EXPECT_EQ(endpoints_[1]->received.size(), 1u);
}

TEST_F(NetworkTest, ReceiverDiesWhileMessageInFlight) {
  network_.send(0, 1, std::make_shared<TestMsg>());
  engine_.schedule_at(0.01, [this] { network_.fail_node(1); });
  engine_.run();
  EXPECT_TRUE(endpoints_[1]->received.empty());
  EXPECT_EQ(endpoints_[0]->failures.size(), 1u);
}

TEST_F(NetworkTest, RecoverNodeReceivesAgain) {
  network_.fail_node(1);
  EXPECT_EQ(network_.alive_count(), 3u);
  network_.recover_node(1);
  EXPECT_EQ(network_.alive_count(), 4u);
  network_.send(0, 1, std::make_shared<TestMsg>());
  engine_.run();
  EXPECT_EQ(endpoints_[1]->received.size(), 1u);
}

TEST_F(NetworkTest, TrafficAccounting) {
  network_.send(0, 1, std::make_shared<TestMsg>(500));
  network_.send(1, 2, std::make_shared<TestMsg>(300));
  engine_.run();
  EXPECT_EQ(network_.traffic().total_sent().messages, 2u);
  EXPECT_EQ(network_.traffic().total_sent().bytes, 800u);
  EXPECT_EQ(network_.traffic().delivered(), 2u);
  EXPECT_EQ(network_.traffic().kind(MsgKind::kOther).messages, 2u);
}

TEST(NetworkIntraSite, CoLocatedNodesUseIntraSiteLatency) {
  sim::Engine engine;
  NetworkConfig config;
  config.intra_site_one_way = 0.0005;
  Network network(engine, std::make_shared<RingLatencyModel>(4, 0.08), config,
                  Rng(1));
  NodeId a = network.add_node(2);
  NodeId b = network.add_node(2);  // same site
  EXPECT_DOUBLE_EQ(network.one_way(a, b), 0.0005);
}

TEST(NetworkLoss, LossProbabilityDropsMessages) {
  sim::Engine engine;
  NetworkConfig config;
  config.loss_probability = 0.5;
  Network network(engine, std::make_shared<RingLatencyModel>(4, 0.08), config,
                  Rng(7));
  RecordingEndpoint a(engine);
  RecordingEndpoint b(engine);
  network.set_endpoint(network.add_node(0), &a);
  network.set_endpoint(network.add_node(1), &b);
  for (int i = 0; i < 400; ++i) {
    network.send(0, 1, std::make_shared<TestMsg>());
  }
  engine.run();
  EXPECT_GT(network.traffic().lost(), 120u);
  EXPECT_LT(network.traffic().lost(), 280u);
  EXPECT_EQ(b.received.size() + network.traffic().lost(), 400u);
}

TEST(NetworkSitePairs, RecordsWhenEnabled) {
  sim::Engine engine;
  NetworkConfig config;
  config.record_site_pairs = true;
  Network network(engine, std::make_shared<RingLatencyModel>(4, 0.08), config,
                  Rng(1));
  RecordingEndpoint a(engine);
  RecordingEndpoint b(engine);
  network.set_endpoint(network.add_node(0), &a);
  network.set_endpoint(network.add_node(3), &b);
  network.send(0, 1, std::make_shared<TestMsg>(100));
  network.send(1, 0, std::make_shared<TestMsg>(50));
  engine.run();
  const auto& pairs = network.traffic().site_pair_bytes();
  ASSERT_EQ(pairs.size(), 1u);  // symmetric key
  EXPECT_DOUBLE_EQ(pairs.begin()->second, 150.0);
}

TEST(NetworkBandwidth, SerializationDelayAddsToLatency) {
  sim::Engine engine;
  NetworkConfig config;
  config.uplink_bytes_per_second = 1000.0;  // 1 KB/s: 100 bytes = 0.1 s
  Network network(engine, std::make_shared<RingLatencyModel>(8, 0.08), config,
                  Rng(1));
  RecordingEndpoint a(engine);
  RecordingEndpoint b(engine);
  network.set_endpoint(network.add_node(0), &a);
  network.set_endpoint(network.add_node(2), &b);  // one_way = 0.04

  network.send(0, 1, std::make_shared<TestMsg>(100));
  engine.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_NEAR(b.received[0].at, 0.04 + 0.1, 1e-9);
}

TEST(NetworkBandwidth, ConcurrentSendsQueueOnTheUplink) {
  sim::Engine engine;
  NetworkConfig config;
  config.uplink_bytes_per_second = 1000.0;
  Network network(engine, std::make_shared<RingLatencyModel>(8, 0.08), config,
                  Rng(1));
  RecordingEndpoint a(engine);
  RecordingEndpoint b(engine);
  network.set_endpoint(network.add_node(0), &a);
  network.set_endpoint(network.add_node(2), &b);

  network.send(0, 1, std::make_shared<TestMsg>(100));
  network.send(0, 1, std::make_shared<TestMsg>(100));  // queues behind
  engine.run();
  ASSERT_EQ(b.received.size(), 2u);
  EXPECT_NEAR(b.received[0].at, 0.14, 1e-9);
  EXPECT_NEAR(b.received[1].at, 0.24, 1e-9);  // +0.1 s serialization
}

TEST(NetworkBandwidth, ZeroBandwidthMeansNoSerializationDelay) {
  sim::Engine engine;
  Network network(engine, std::make_shared<RingLatencyModel>(8, 0.08),
                  NetworkConfig{}, Rng(1));
  RecordingEndpoint a(engine);
  RecordingEndpoint b(engine);
  network.set_endpoint(network.add_node(0), &a);
  network.set_endpoint(network.add_node(2), &b);
  network.send(0, 1, std::make_shared<TestMsg>(1000000));
  engine.run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_NEAR(b.received[0].at, 0.04, 1e-9);
}

/// Applies one fixed LinkDecision to every link.
struct StubPolicy final : LinkPolicy {
  LinkDecision decision;
  LinkDecision evaluate(NodeId, NodeId) const override { return decision; }
};

class LinkPolicyTest : public ::testing::Test {
 protected:
  LinkPolicyTest()
      : network_(engine_, std::make_shared<RingLatencyModel>(8, 0.08),
                 NetworkConfig{}, Rng(5)),
        a_(engine_),
        b_(engine_) {
    network_.set_endpoint(network_.add_node(0), &a_);
    network_.set_endpoint(network_.add_node(2), &b_);  // one_way = 0.04
    network_.set_trace(&trace_);
    network_.set_link_policy(&policy_);
  }

  sim::Engine engine_;
  Network network_;
  RecordingEndpoint a_;
  RecordingEndpoint b_;
  CountingTraceSink trace_;
  StubPolicy policy_;
};

TEST_F(LinkPolicyTest, BlockedLinkBlackholesSilently) {
  policy_.decision.blocked = true;
  network_.send(0, 1, std::make_shared<TestMsg>());
  engine_.run();
  EXPECT_TRUE(b_.received.empty());
  // Unlike a dead receiver, a partition gives the sender no TCP reset:
  // unreachable is not provably dead.
  EXPECT_TRUE(a_.failures.empty());
  EXPECT_EQ(network_.traffic().policy_dropped(), 1u);
  EXPECT_EQ(trace_.drops(DropReason::kLinkPolicy), 1u);
  EXPECT_EQ(trace_.drops(DropReason::kDeadReceiver), 0u);
}

TEST_F(LinkPolicyTest, LatencyMultiplierScalesDelay) {
  policy_.decision.latency_multiplier = 3.0;
  network_.send(0, 1, std::make_shared<TestMsg>());
  engine_.run();
  ASSERT_EQ(b_.received.size(), 1u);
  EXPECT_NEAR(b_.received[0].at, 3.0 * 0.04, 1e-9);
}

TEST_F(LinkPolicyTest, JitterAddsBoundedExtraDelay) {
  policy_.decision.jitter = 0.05;
  for (int i = 0; i < 50; ++i) {
    network_.send(0, 1, std::make_shared<TestMsg>());
  }
  engine_.run();
  ASSERT_EQ(b_.received.size(), 50u);
  bool any_jittered = false;
  for (const auto& r : b_.received) {
    EXPECT_GE(r.at, 0.04 - 1e-12);
    EXPECT_LE(r.at, 0.04 + 0.05 + 1e-12);
    if (r.at > 0.04 + 1e-9) any_jittered = true;
  }
  EXPECT_TRUE(any_jittered);
}

TEST_F(LinkPolicyTest, ExtraLossDropsAboutTheRequestedFraction) {
  policy_.decision.extra_loss = 0.5;
  for (int i = 0; i < 400; ++i) {
    network_.send(0, 1, std::make_shared<TestMsg>());
  }
  engine_.run();
  EXPECT_GT(network_.traffic().policy_dropped(), 120u);
  EXPECT_LT(network_.traffic().policy_dropped(), 280u);
  EXPECT_EQ(b_.received.size() + network_.traffic().policy_dropped(), 400u);
  EXPECT_EQ(trace_.drops(DropReason::kLinkPolicy),
            network_.traffic().policy_dropped());
}

TEST_F(LinkPolicyTest, ClearingThePolicyRestoresDelivery) {
  policy_.decision.blocked = true;
  network_.send(0, 1, std::make_shared<TestMsg>());
  engine_.run();
  EXPECT_TRUE(b_.received.empty());
  network_.set_link_policy(nullptr);
  network_.send(0, 1, std::make_shared<TestMsg>());
  engine_.run();
  EXPECT_EQ(b_.received.size(), 1u);
}

TEST(NetworkLoss, SetLossProbabilityTakesEffectMidRun) {
  sim::Engine engine;
  Network network(engine, std::make_shared<RingLatencyModel>(4, 0.08),
                  NetworkConfig{}, Rng(11));
  RecordingEndpoint a(engine);
  RecordingEndpoint b(engine);
  network.set_endpoint(network.add_node(0), &a);
  network.set_endpoint(network.add_node(1), &b);

  for (int i = 0; i < 100; ++i) network.send(0, 1, std::make_shared<TestMsg>());
  engine.run();
  EXPECT_EQ(b.received.size(), 100u);  // lossless by default

  network.set_loss_probability(0.5);
  for (int i = 0; i < 400; ++i) network.send(0, 1, std::make_shared<TestMsg>());
  engine.run();
  EXPECT_GT(network.traffic().lost(), 120u);
  EXPECT_LT(network.traffic().lost(), 280u);

  network.set_loss_probability(0.0);
  std::size_t before = b.received.size();
  for (int i = 0; i < 100; ++i) network.send(0, 1, std::make_shared<TestMsg>());
  engine.run();
  EXPECT_EQ(b.received.size(), before + 100u);
}

// A PoolVec copied out of a message detaches from the arena
// (select_on_container_copy_construction returns a null-arena allocator), so
// the copy may safely outlive every pooled message and the Network itself.
// Under ASan this also proves no free into a destroyed arena.
TEST(MessagePool, CopiedPayloadVectorDetachesFromArena) {
  PoolVec<int> copy;
  {
    auto arena = std::make_shared<MessageArena>();
    PoolVec<int> pooled{PayloadAllocator<int>(arena)};
    for (int i = 0; i < 64; ++i) pooled.push_back(i);
    PoolVec<int> detached = pooled;  // copy ctor: allocator must not follow
    EXPECT_EQ(detached.get_allocator().arena(), nullptr);
    ASSERT_EQ(detached.size(), 64u);
    copy = detached;  // copy's own (null) allocator supplies the storage
  }  // arena and all arena-backed storage destroyed
  copy.push_back(64);
  EXPECT_EQ(copy.size(), 65u);
  EXPECT_EQ(copy.front(), 0);
  EXPECT_EQ(copy.back(), 64);
}

TEST(NetworkRoundRobin, MapsNodesToSitesModulo) {
  sim::Engine engine;
  Network network(engine, std::make_shared<RingLatencyModel>(3, 0.08),
                  NetworkConfig{}, Rng(1));
  network.add_nodes_round_robin(7);
  EXPECT_EQ(network.node_count(), 7u);
  EXPECT_EQ(network.site_of(0), 0u);
  EXPECT_EQ(network.site_of(3), 0u);
  EXPECT_EQ(network.site_of(5), 2u);
}

}  // namespace
}  // namespace gocast::net

// Tests for the adversarial fault models (DESIGN.md §9): per-node behavior
// semantics (mute forwarder, digest liar, degree liar, slow), the suspicion
// defenses (eviction under attack, no false positives on honest runs), and
// pull recovery under sustained link loss including the pending-pull GC
// guarantee.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "gocast/messages.h"
#include "gocast/system.h"
#include "harness/scenario.h"

namespace gocast::core {
namespace {

FaultBehavior mute_behavior() {
  FaultBehavior b;
  b.mute_forwarder = true;
  return b;
}

FaultBehavior liar_behavior() {
  FaultBehavior b;
  b.digest_liar = true;
  return b;
}

DefenseParams all_defenses() {
  DefenseParams d;
  d.track_suspicion = true;
  d.escalate_pulls = true;
  d.deprioritize_suspects = true;
  d.evict_suspects = true;
  d.digest_sanity = true;
  d.suspect_silent = true;
  d.audit_pulls = true;
  d.audit_every = 1;
  return d;
}

// ---------------------------------------------------------------------------
// Behavior semantics at the node level
// ---------------------------------------------------------------------------

TEST(MuteForwarder, DeliversButNeverAdvertisesForeignMessages) {
  SystemConfig config;
  config.node_count = 32;
  config.seed = 31;
  System system(config);
  system.start();
  system.run_for(60.0);

  const NodeId mute = 5;
  system.node(mute).set_fault_behavior(mute_behavior());

  const std::size_t kMessages = 20;
  for (std::size_t i = 0; i < kMessages; ++i) {
    NodeId source = static_cast<NodeId>((mute + 1 + i) % system.size());
    ASSERT_NE(source, mute);
    system.node(source).multicast(256);
    system.run_for(0.5);
  }
  system.run_for(15.0);  // gossip/pull recovery around the mute node

  // The free-rider keeps consuming: every message is delivered to it...
  EXPECT_EQ(system.node(mute).deliveries_count(), kMessages);
  // ...but it advertised none of them (no digest entries, honest traffic
  // only, so its pending queues never fill).
  EXPECT_EQ(system.node(mute).dissemination().digest_entries_sent(), 0u);
  // Honest nodes still get everything — tree fragments around the mute hole
  // are rescued by gossip pulls through other neighbors.
  for (NodeId id = 0; id < system.size(); ++id) {
    if (id == mute) continue;
    EXPECT_EQ(system.node(id).deliveries_count(), kMessages) << "node " << id;
  }

  // Free-rider semantics: the mute node still disseminates its OWN
  // multicasts (muting sheds relay cost, it is not self-censorship).
  system.node(mute).multicast(256);
  system.run_for(15.0);
  for (NodeId id = 0; id < system.size(); ++id) {
    EXPECT_EQ(system.node(id).deliveries_count(), kMessages + 1)
        << "node " << id;
  }
}

TEST(DigestLiar, PlantsRecordsItNeverHoldsAndNeverPulls) {
  SystemConfig config;
  config.node_count = 16;
  config.seed = 32;
  System system(config);
  system.start();
  system.run_for(30.0);

  const NodeId liar = 3;
  system.node(liar).set_fault_behavior(liar_behavior());
  auto& diss = system.node(liar).dissemination();

  std::vector<NodeId> neighbors = system.node(liar).overlay().neighbor_ids();
  ASSERT_FALSE(neighbors.empty());
  const MsgId fake{9, 1234};  // never actually multicast by node 9
  GossipDigestMsg digest({DigestEntry{fake, system.now() - 0.5}}, {},
                         system.node(liar).overlay().my_degrees());
  diss.on_gossip_digest(neighbors.front(), digest);

  // The liar planted a payload-less record for the id...
  EXPECT_TRUE(diss.has_message(fake));
  system.run_for(2.0);
  EXPECT_EQ(diss.records_older_than(1.0), 1u);
  EXPECT_EQ(diss.payloads_older_than(1.0), 0u);
  // ...never fetches the real payload...
  system.run_for(5.0);
  EXPECT_EQ(diss.pulls_sent(), 0u);
  // ...and re-advertises it to other neighbors as if stored.
  EXPECT_GE(diss.digest_entries_sent(), 1u);
}

TEST(DegreeLiar, AdvertisesFakeDegrees) {
  SystemConfig config;
  config.node_count = 32;
  config.seed = 33;
  System system(config);
  system.start();
  system.run_for(90.0);  // converge to the 1 random + 5 nearby target

  const NodeId liar = 4;
  ASSERT_GE(system.node(liar).overlay().neighbor_ids().size(), 4u);
  net::PeerDegrees honest = system.node(liar).overlay().my_degrees();
  EXPECT_GT(honest.rand_degree + honest.near_degree, 0);

  FaultBehavior b;
  b.degree_liar = true;
  b.fake_rand_degree = 0;
  b.fake_near_degree = 1;
  system.node(liar).set_fault_behavior(b);
  net::PeerDegrees faked = system.node(liar).overlay().my_degrees();
  EXPECT_EQ(faked.rand_degree, 0);
  EXPECT_EQ(faked.near_degree, 1);
  // The lie is what goes on the wire; the actual neighbor set is unchanged.
  EXPECT_GE(system.node(liar).overlay().neighbor_ids().size(), 4u);
}

TEST(SlowNode, StillDeliversEverything) {
  SystemConfig config;
  config.node_count = 16;
  config.seed = 34;
  System system(config);
  system.start();
  system.run_for(40.0);

  const NodeId slow = 2;
  FaultBehavior b;
  b.processing_delay = 0.05;
  system.node(slow).set_fault_behavior(b);

  const std::size_t kMessages = 10;
  for (std::size_t i = 0; i < kMessages; ++i) {
    system.node(0).multicast(256);
    system.run_for(0.5);
  }
  system.run_for(10.0);
  // Slow is degradation, not loss: every message still lands.
  EXPECT_EQ(system.node(slow).deliveries_count(), kMessages);
}

// ---------------------------------------------------------------------------
// Defenses at the scenario level
// ---------------------------------------------------------------------------

TEST(Defenses, EvictMuteForwardersUnderTraffic) {
  harness::ScenarioConfig config;
  config.protocol = harness::Protocol::kGoCast;
  config.node_count = 64;
  config.seed = 11;
  config.warmup = 90.0;
  config.message_count = 400;
  config.message_rate = 25.0;
  config.payload_bytes = 256;
  config.loss_probability = 0.03;
  config.exclude_adversaries = true;
  config.drain = 10.0;
  config.fault_spec = "70:mute_forwarder:frac=0.125";
  config.defense = all_defenses();

  harness::ScenarioResult result = harness::run_scenario(config);
  // Challenge pulls catch the mutes: honest neighbors evict real adversaries.
  EXPECT_GT(result.adversary_evictions, 0u);
  EXPECT_GT(result.audits_sent, 0u);
  // Honest participants keep a healthy delivery rate meanwhile.
  EXPECT_GE(result.report.delivered_fraction, 0.95);
}

TEST(Defenses, HonestRunAtZeroLossHasNoEvictions) {
  // The no-false-positive guarantee: with every defense armed but nobody
  // misbehaving and no loss, nothing ever crosses the suspicion threshold.
  harness::ScenarioConfig config;
  config.protocol = harness::Protocol::kGoCast;
  config.node_count = 48;
  config.seed = 7;
  config.warmup = 60.0;
  config.message_count = 300;
  config.message_rate = 50.0;
  config.payload_bytes = 256;
  config.drain = 10.0;
  config.defense = all_defenses();

  harness::ScenarioResult result = harness::run_scenario(config);
  EXPECT_EQ(result.suspects_evicted, 0u);
  EXPECT_GE(result.report.delivered_fraction, 0.999);
}

// ---------------------------------------------------------------------------
// Pull recovery under sustained loss (waiting-period GC guarantee)
// ---------------------------------------------------------------------------

TEST(PullRecovery, SustainedLossIsRecoveredAndPendingPullsDrain) {
  SystemConfig config;
  config.node_count = 32;
  config.seed = 13;
  System system(config);
  system.start();
  system.run_for(60.0);
  system.network().set_loss_probability(0.3);

  const std::size_t kMessages = 40;
  for (std::size_t i = 0; i < kMessages; ++i) {
    system.node(static_cast<NodeId>(i % system.size())).multicast(256);
    system.run_for(0.5);
  }
  system.run_for(20.0);  // recovery window: retried pulls fill the holes

  std::uint64_t deliveries = 0;
  std::uint64_t pulls = 0;
  for (NodeId id = 0; id < system.size(); ++id) {
    deliveries += system.node(id).deliveries_count();
    pulls += system.node(id).dissemination().pulls_sent();
  }
  // Despite 30% loss on every message, gossip + retried pulls recover almost
  // every (message, node) pair — and pulls demonstrably did the work.
  const double expected =
      static_cast<double>(kMessages) * static_cast<double>(system.size());
  EXPECT_GE(static_cast<double>(deliveries), 0.95 * expected);
  EXPECT_GT(pulls, 0u);

  // After the waiting period b (gc_payload_after) past the last injection,
  // every in-flight pull has either succeeded, exhausted its retry budget,
  // or been reclaimed by the GC: pull_pending_ must be empty everywhere.
  system.run_for(config.node.dissemination.gc_payload_after +
                 2.0 * config.node.dissemination.gc_sweep_period);
  for (NodeId id = 0; id < system.size(); ++id) {
    EXPECT_EQ(system.node(id).dissemination().pull_pending_size(), 0u)
        << "node " << id;
  }
}

}  // namespace
}  // namespace gocast::core

// Wire codec coverage: round-trip fixpoint for every message type in the
// grammar, wire_size() consistency against real encoded bytes, header
// rejection, age re-anchoring, and seeded corruption fuzz (bit flips,
// truncations, length lies) asserting decode rejects without crashing.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "gocast/messages.h"
#include "membership/member_entry.h"
#include "net/message_pool.h"
#include "overlay/messages.h"
#include "tree/messages.h"
#include "wire/codec.h"

namespace gocast {
namespace {

using core::DataMsg;
using core::DigestEntry;
using core::GossipDigestMsg;
using core::PullRequestMsg;
using membership::MemberEntry;
using overlay::LinkKind;

constexpr SimTime kNow = 100.0;
constexpr NodeId kSrc = 7;
constexpr NodeId kDst = 42;

net::PeerDegrees sample_degrees() {
  net::PeerDegrees d;
  d.rand_degree = 5;
  d.near_degree = 2;
  d.max_nearby_rtt = 0.034f;
  return d;
}

std::vector<MemberEntry> sample_members() {
  std::vector<MemberEntry> members;
  for (NodeId id = 1; id <= 3; ++id) {
    MemberEntry m;
    m.id = id;
    m.landmark_rtt = membership::empty_landmarks();
    m.landmark_rtt[0] = 0.01f * static_cast<float>(id);
    m.landmark_rtt[3] = 0.2f;
    m.heard_at = kNow - 1.5 * static_cast<double>(id);
    members.push_back(m);
  }
  return members;
}

/// One instance of every type in the wire grammar, with realistic fields.
std::vector<net::MessagePtr> all_messages() {
  net::PeerDegrees degrees = sample_degrees();
  auto members = sample_members();
  std::vector<DigestEntry> entries{{MsgId{3, 9}, kNow - 0.25},
                                   {MsgId{5, 1}, kNow - 2.0}};
  std::vector<net::MessagePtr> msgs;
  msgs.push_back(std::make_shared<overlay::NeighborRequestMsg>(
      LinkKind::kNearby, 0.05, true, degrees));
  msgs.push_back(std::make_shared<overlay::NeighborAcceptMsg>(
      LinkKind::kRandom, 0.07, degrees));
  msgs.push_back(
      std::make_shared<overlay::NeighborRejectMsg>(LinkKind::kNearby, degrees));
  msgs.push_back(std::make_shared<overlay::NeighborDropMsg>(degrees));
  msgs.push_back(std::make_shared<overlay::LinkTransferMsg>(19, degrees));
  msgs.push_back(std::make_shared<overlay::PingMsg>(0xDEADBEEF));
  msgs.push_back(std::make_shared<overlay::PongMsg>(0xDEADBEEF, degrees));
  msgs.push_back(std::make_shared<overlay::JoinRequestMsg>());
  msgs.push_back(std::make_shared<overlay::JoinReplyMsg>(members));
  msgs.push_back(std::make_shared<tree::HeartbeatMsg>(tree::Epoch{4, 0}, 77,
                                                      0.012, degrees));
  msgs.push_back(
      std::make_shared<tree::ChildJoinMsg>(tree::Epoch{4, 0}, degrees));
  msgs.push_back(std::make_shared<tree::ChildLeaveMsg>(degrees));
  msgs.push_back(std::make_shared<DataMsg>(MsgId{kSrc, 12}, kNow - 0.003, 1200,
                                           true, degrees));
  msgs.push_back(std::make_shared<GossipDigestMsg>(entries, members, degrees));
  msgs.push_back(std::make_shared<PullRequestMsg>(
      std::vector<MsgId>{{3, 9}, {5, 1}}, degrees));
  // v2 grouped framing: group-scoped singles for every scoped type, plus the
  // multiplexed gossip — including a zero-count section, which is valid (the
  // mux emits those as contact beacons for sparse groups).
  msgs.push_back(std::make_shared<DataMsg>(MsgId{kSrc, 13}, kNow - 0.001, 256,
                                           false, degrees, GroupId{3}));
  msgs.push_back(
      std::make_shared<GossipDigestMsg>(entries, members, degrees, GroupId{2}));
  msgs.push_back(std::make_shared<PullRequestMsg>(std::vector<MsgId>{{3, 9}},
                                                  degrees, GroupId{5}));
  msgs.push_back(std::make_shared<tree::HeartbeatMsg>(
      tree::Epoch{4, 0}, 78, 0.013, degrees, GroupId{2}));
  msgs.push_back(std::make_shared<tree::ChildJoinMsg>(tree::Epoch{4, 0},
                                                      degrees, GroupId{7}));
  msgs.push_back(
      std::make_shared<tree::ChildLeaveMsg>(degrees, GroupId{7}));
  std::vector<core::GroupSection> sections{{1, 2}, {4, 0}, {6, 1}};
  std::vector<DigestEntry> flat{{MsgId{2, 1}, kNow - 0.5},
                                {MsgId{2, 2}, kNow - 0.25},
                                {MsgId{9, 3}, kNow - 1.0}};
  msgs.push_back(std::make_shared<core::GroupedGossipMsg>(sections, flat,
                                                          members, degrees));
  return msgs;
}

class WireCodecTest : public ::testing::Test {
 protected:
  wire::FrameBuffer encode_frame(const net::Message& msg, SimTime now = kNow) {
    wire::FrameBuffer buf{net::PayloadAllocator<std::uint8_t>(arena_)};
    std::size_t n = wire::encode(msg, kSrc, kDst, now, buf);
    EXPECT_EQ(n, buf.size());
    return buf;
  }

  wire::DecodeStatus decode_frame(const wire::FrameBuffer& buf,
                                  wire::Decoded& out, SimTime now = kNow) {
    return wire::decode(buf.data(), buf.size(), arena_, now, out);
  }

  std::shared_ptr<net::MessageArena> arena_ =
      std::make_shared<net::MessageArena>();
};

// ---- wire_size() consistency (satellite: audit every override) ----------

TEST_F(WireCodecTest, EncodedSizeMatchesWireSizeForEveryType) {
  for (const auto& msg : all_messages()) {
    wire::FrameBuffer buf = encode_frame(*msg);
    EXPECT_EQ(buf.size(), msg->wire_size())
        << "type " << net::msg_kind_name(msg->kind()) << " packet "
        << msg->packet_type();
    EXPECT_EQ(wire::encoded_size(*msg), msg->wire_size());
  }
}

TEST_F(WireCodecTest, EncodeAppendsWithoutClobbering) {
  auto msgs = all_messages();
  wire::FrameBuffer buf{net::PayloadAllocator<std::uint8_t>(arena_)};
  std::size_t a = wire::encode(*msgs[5], kSrc, kDst, kNow, buf);
  std::size_t b = wire::encode(*msgs[6], kSrc, kDst, kNow, buf);
  ASSERT_EQ(buf.size(), a + b);
  // First frame intact: magic still at offset 0 and its type field intact.
  EXPECT_EQ(buf[0], 0x47);  // 'G'
  EXPECT_EQ(buf[1], 0x43);  // 'C'
  wire::Decoded out;
  EXPECT_EQ(wire::decode(buf.data(), a, arena_, kNow, out),
            wire::DecodeStatus::kOk);
  EXPECT_EQ(out.msg->packet_type(), msgs[5]->packet_type());
}

// ---- round-trip fixpoint -------------------------------------------------

TEST_F(WireCodecTest, RoundTripIsAFixpointForEveryType) {
  for (const auto& msg : all_messages()) {
    wire::FrameBuffer first = encode_frame(*msg);
    wire::Decoded out;
    ASSERT_EQ(decode_frame(first, out), wire::DecodeStatus::kOk)
        << "packet " << msg->packet_type();
    ASSERT_NE(out.msg, nullptr);
    EXPECT_EQ(out.src, kSrc);
    EXPECT_EQ(out.dst, kDst);
    EXPECT_EQ(out.msg->packet_type(), msg->packet_type());
    EXPECT_EQ(out.msg->kind(), msg->kind());
    EXPECT_EQ(out.msg->wire_size(), msg->wire_size());

    // Re-encoding the decoded message at the same local time must
    // reproduce the frame byte for byte.
    wire::FrameBuffer second = encode_frame(*out.msg);
    ASSERT_EQ(second.size(), first.size()) << "packet " << msg->packet_type();
    EXPECT_EQ(std::memcmp(first.data(), second.data(), first.size()), 0)
        << "re-encode differs for packet " << msg->packet_type();
  }
}

TEST_F(WireCodecTest, FieldsSurviveTheRoundTrip) {
  net::PeerDegrees degrees = sample_degrees();
  overlay::NeighborRequestMsg req(LinkKind::kNearby, 0.05, true, degrees);
  wire::Decoded out;
  ASSERT_EQ(decode_frame(encode_frame(req), out), wire::DecodeStatus::kOk);
  const auto& r = static_cast<const overlay::NeighborRequestMsg&>(*out.msg);
  EXPECT_EQ(r.link, LinkKind::kNearby);
  EXPECT_TRUE(r.is_transfer);
  EXPECT_DOUBLE_EQ(r.measured_rtt, 0.05);
  ASSERT_NE(r.peer_degrees(), nullptr);
  EXPECT_EQ(r.peer_degrees()->rand_degree, degrees.rand_degree);
  EXPECT_EQ(r.peer_degrees()->near_degree, degrees.near_degree);
  EXPECT_FLOAT_EQ(r.peer_degrees()->max_nearby_rtt, degrees.max_nearby_rtt);

  tree::HeartbeatMsg hb(tree::Epoch{9, 3}, 1234, 0.078, degrees);
  ASSERT_EQ(decode_frame(encode_frame(hb), out), wire::DecodeStatus::kOk);
  const auto& h = static_cast<const tree::HeartbeatMsg&>(*out.msg);
  EXPECT_EQ(h.epoch.term, 9u);
  EXPECT_EQ(h.epoch.root, 3u);
  EXPECT_EQ(h.seq, 1234u);
  EXPECT_DOUBLE_EQ(h.cum_latency, 0.078);

  PullRequestMsg pull(std::vector<MsgId>{{3, 9}, {5, 1}}, degrees);
  ASSERT_EQ(decode_frame(encode_frame(pull), out), wire::DecodeStatus::kOk);
  const auto& p = static_cast<const PullRequestMsg&>(*out.msg);
  ASSERT_EQ(p.ids.size(), 2u);
  EXPECT_EQ(p.ids[0], (MsgId{3, 9}));
  EXPECT_EQ(p.ids[1], (MsgId{5, 1}));
}

// ---- age re-anchoring ----------------------------------------------------

TEST_F(WireCodecTest, InstantsReanchorToTheReceiverClock) {
  net::PeerDegrees degrees = sample_degrees();
  // Sender clock reads 100.0, message injected 3 s ago; receiver clock
  // reads 250.0 → the decoded inject time must be 3 s before *its* now.
  DataMsg data(MsgId{1, 1}, kNow - 3.0, 64, false, degrees);
  wire::FrameBuffer frame = encode_frame(data, /*now=*/kNow);
  wire::Decoded out;
  ASSERT_EQ(decode_frame(frame, out, /*now=*/250.0), wire::DecodeStatus::kOk);
  const auto& d = static_cast<const DataMsg&>(*out.msg);
  EXPECT_NEAR(d.inject_time, 250.0 - 3.0, 1e-9);
  EXPECT_EQ(d.payload_bytes, 64u);
  EXPECT_FALSE(d.via_tree);

  std::vector<DigestEntry> entries{{MsgId{1, 1}, kNow - 0.5}};
  GossipDigestMsg digest(entries, sample_members(), degrees);
  frame = encode_frame(digest, kNow);
  ASSERT_EQ(decode_frame(frame, out, 250.0), wire::DecodeStatus::kOk);
  const auto& g = static_cast<const GossipDigestMsg&>(*out.msg);
  ASSERT_EQ(g.entries.size(), 1u);
  EXPECT_NEAR(g.entries[0].inject_time, 250.0 - 0.5, 1e-3);  // f32 age
  ASSERT_EQ(g.members.size(), 3u);
  // Member ages travel in deciseconds.
  EXPECT_NEAR(g.members[0].heard_at, 250.0 - 1.5, 0.051);
  // Never in the receiver's future.
  for (const auto& m : g.members) EXPECT_LE(m.heard_at, 250.0);
  for (const auto& e : g.entries) EXPECT_LE(e.inject_time, 250.0);
}

// ---- header rejection ----------------------------------------------------

TEST_F(WireCodecTest, RejectsBadHeaders) {
  overlay::PingMsg ping(1);
  wire::FrameBuffer good = encode_frame(ping);
  wire::Decoded out;

  auto corrupted = [&](std::size_t offset, std::uint8_t value) {
    wire::FrameBuffer f = good;
    f[offset] = value;
    return wire::decode(f.data(), f.size(), arena_, kNow, out);
  };

  EXPECT_EQ(corrupted(0, 0x00), wire::DecodeStatus::kBadMagic);
  EXPECT_EQ(corrupted(2, wire::kVersionGrouped + 1),
            wire::DecodeStatus::kBadVersion);
  // Version 2 parses at the header but only carries grouped bodies — a ping
  // re-tagged v2 is malformed, not merely an unknown version.
  EXPECT_EQ(corrupted(2, wire::kVersionGrouped), wire::DecodeStatus::kMalformed);
  EXPECT_EQ(corrupted(3, 0x80), wire::DecodeStatus::kMalformed);  // flags
  EXPECT_EQ(corrupted(4, 0xFF), wire::DecodeStatus::kBadType);
  EXPECT_EQ(corrupted(6, 0x01), wire::DecodeStatus::kMalformed);  // reserved
  EXPECT_EQ(out.msg, nullptr);

  // Claimed body longer than the datagram → truncated.
  EXPECT_EQ(corrupted(8, 0xFF), wire::DecodeStatus::kTruncated);
  // Claimed body shorter than the datagram → length mismatch.
  EXPECT_EQ(corrupted(8, 0x00), wire::DecodeStatus::kLengthMismatch);

  // Oversized datagrams are rejected before any parsing.
  std::vector<std::uint8_t> huge(wire::kMaxFrameBytes + 1, 0);
  EXPECT_EQ(wire::decode(huge.data(), huge.size(), arena_, kNow, out),
            wire::DecodeStatus::kOversized);
}

TEST_F(WireCodecTest, EveryTruncationOfEveryTypeIsRejected) {
  for (const auto& msg : all_messages()) {
    wire::FrameBuffer frame = encode_frame(*msg);
    for (std::size_t len = 0; len < frame.size(); ++len) {
      wire::Decoded out;
      wire::DecodeStatus status =
          wire::decode(frame.data(), len, arena_, kNow, out);
      EXPECT_NE(status, wire::DecodeStatus::kOk)
          << "packet " << msg->packet_type() << " truncated to " << len;
      EXPECT_EQ(out.msg, nullptr);
    }
  }
}

TEST_F(WireCodecTest, RejectsMalformedBodies) {
  net::PeerDegrees degrees = sample_degrees();
  wire::Decoded out;

  // NaN where a duration belongs (measured_rtt at body offset 2).
  overlay::NeighborRequestMsg req(LinkKind::kRandom, 0.05, false, degrees);
  wire::FrameBuffer f = encode_frame(req);
  double nan = std::nan("");
  std::memcpy(f.data() + wire::kHeaderBytes + 2, &nan, sizeof nan);
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);

  // Out-of-range enum byte for LinkKind.
  f = encode_frame(req);
  f[wire::kHeaderBytes] = 2;
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);

  // Boolean byte other than 0/1.
  f = encode_frame(req);
  f[wire::kHeaderBytes + 1] = 7;
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);

  // Member-count lie in a JoinReply (claims one more than the bytes hold).
  overlay::JoinReplyMsg reply(sample_members());
  f = encode_frame(reply);
  f[wire::kHeaderBytes] = static_cast<std::uint8_t>(sample_members().size() + 1);
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);

  // Payload-length lie inside a DataMsg (byte count disagrees with body).
  DataMsg data(MsgId{1, 1}, kNow, 32, true, degrees);
  f = encode_frame(data);
  f[wire::kHeaderBytes + 16] = 33;  // payload_bytes field
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);

  // Negative max_nearby_rtt in the piggybacked degrees.
  overlay::PongMsg pong(1, degrees);
  f = encode_frame(pong);
  float neg = -1.0f;
  std::memcpy(f.data() + wire::kHeaderBytes + 8, &neg, sizeof neg);
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);
}

TEST_F(WireCodecTest, EncodeRefusesOversizedAndForeignMessages) {
  net::PeerDegrees degrees = sample_degrees();
  // A payload that cannot fit one UDP datagram.
  DataMsg big(MsgId{1, 1}, kNow, 70000, false, degrees);
  wire::FrameBuffer buf{net::PayloadAllocator<std::uint8_t>(arena_)};
  EXPECT_EQ(wire::encode(big, kSrc, kDst, kNow, buf), 0u);
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(wire::encoded_size(big), big.wire_size());  // size math still honest

  // A message type outside the wire grammar.
  struct ForeignMsg : net::Message {
    ForeignMsg() : net::Message(net::MsgKind::kOther, 999) {}
    std::size_t wire_size() const override { return 8; }
  } foreign;
  EXPECT_EQ(wire::encode(foreign, kSrc, kDst, kNow, buf), 0u);
  EXPECT_EQ(wire::encoded_size(foreign), 0u);
}

// ---- v2 grouped framing --------------------------------------------------

TEST_F(WireCodecTest, EncoderPicksTheLowestVersionPerMessage) {
  net::PeerDegrees degrees = sample_degrees();
  // Group-0 traffic must stay version 1, byte-identical to the
  // pre-multigroup grammar; the same type in a non-default group gets the
  // v2 frame with the 4-byte group prefix.
  DataMsg base(MsgId{1, 1}, kNow, 64, true, degrees);
  DataMsg scoped(MsgId{1, 1}, kNow, 64, true, degrees, GroupId{6});
  wire::FrameBuffer v1 = encode_frame(base);
  wire::FrameBuffer v2 = encode_frame(scoped);
  EXPECT_EQ(v1[2], wire::kVersion);
  EXPECT_EQ(v2[2], wire::kVersionGrouped);
  EXPECT_EQ(v2.size(), v1.size() + 4);

  wire::Decoded out;
  ASSERT_EQ(decode_frame(v2, out), wire::DecodeStatus::kOk);
  EXPECT_EQ(static_cast<const DataMsg&>(*out.msg).group, GroupId{6});
}

TEST_F(WireCodecTest, GroupedGossipSectionsSurviveTheRoundTrip) {
  net::PeerDegrees degrees = sample_degrees();
  // Middle section has count 0: a contact beacon for a group with nothing
  // fresh to advertise — must round-trip, not be dropped or rejected.
  std::vector<core::GroupSection> sections{{1, 1}, {3, 0}, {8, 2}};
  std::vector<DigestEntry> flat{{MsgId{4, 2}, kNow - 0.25},
                                {MsgId{6, 1}, kNow - 0.5},
                                {MsgId{6, 2}, kNow - 0.75}};
  core::GroupedGossipMsg mux(sections, flat, sample_members(), degrees);
  ASSERT_EQ(mux.section_entry_total(), flat.size());

  wire::FrameBuffer frame = encode_frame(mux);
  EXPECT_EQ(frame[2], wire::kVersionGrouped);
  wire::Decoded out;
  ASSERT_EQ(decode_frame(frame, out), wire::DecodeStatus::kOk);
  const auto& m = static_cast<const core::GroupedGossipMsg&>(*out.msg);
  ASSERT_EQ(m.sections.size(), 3u);
  EXPECT_EQ(m.sections[0], (core::GroupSection{1, 1}));
  EXPECT_EQ(m.sections[1], (core::GroupSection{3, 0}));
  EXPECT_EQ(m.sections[2], (core::GroupSection{8, 2}));
  ASSERT_EQ(m.entries.size(), 3u);
  EXPECT_EQ(m.entries[1].id, (MsgId{6, 1}));
  EXPECT_EQ(m.members.size(), 3u);
}

TEST_F(WireCodecTest, RejectsMalformedGroupedBodies) {
  net::PeerDegrees degrees = sample_degrees();
  wire::Decoded out;

  // A v2 group-scoped body whose group field says 0 is non-canonical (group
  // 0 must travel as v1) and is rejected, keeping encode/decode a bijection.
  DataMsg scoped(MsgId{1, 1}, kNow, 32, true, degrees, GroupId{2});
  wire::FrameBuffer f = encode_frame(scoped);
  std::uint32_t zero = 0;
  std::memcpy(f.data() + wire::kHeaderBytes, &zero, sizeof zero);
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);

  // GroupedGossip re-tagged v1: the type does not exist in the v1 grammar.
  std::vector<core::GroupSection> sections{{2, 1}, {5, 1}};
  std::vector<DigestEntry> flat{{MsgId{4, 2}, kNow - 0.25},
                                {MsgId{6, 1}, kNow - 0.5}};
  core::GroupedGossipMsg mux(sections, flat, sample_members(), degrees);
  f = encode_frame(mux);
  f[2] = wire::kVersion;
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);

  // Sections out of ascending order (swap the two group ids in the bytes:
  // section table starts after the three u32 counts + degrees).
  const std::size_t sections_at = wire::kHeaderBytes + 12 + 8;
  f = encode_frame(mux);
  std::uint32_t g2 = 0, g5 = 0;
  std::memcpy(&g2, f.data() + sections_at, 4);
  std::memcpy(&g5, f.data() + sections_at + 8, 4);
  std::memcpy(f.data() + sections_at, &g5, 4);
  std::memcpy(f.data() + sections_at + 8, &g2, 4);
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);

  // Duplicate group in consecutive sections.
  f = encode_frame(mux);
  std::memcpy(f.data() + sections_at + 8, &g2, 4);
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);

  // Section counts that do not partition the entry table (1+2 != 2).
  f = encode_frame(mux);
  std::uint32_t lie = 2;
  std::memcpy(f.data() + sections_at + 12, &lie, 4);
  EXPECT_EQ(decode_frame(f, out), wire::DecodeStatus::kMalformed);
  EXPECT_EQ(out.msg, nullptr);
}

// ---- deterministic corruption fuzz --------------------------------------

TEST_F(WireCodecTest, SeededBitFlipFuzzNeverCrashesTheDecoder) {
  std::mt19937 rng(20260809);
  auto msgs = all_messages();
  int accepted = 0, rejected = 0;
  for (int round = 0; round < 4000; ++round) {
    const auto& msg = *msgs[rng() % msgs.size()];
    wire::FrameBuffer frame = encode_frame(msg);
    int flips = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < flips; ++i) {
      std::size_t bit = rng() % (frame.size() * 8);
      frame[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }
    wire::Decoded out;
    wire::DecodeStatus status = decode_frame(frame, out);
    ASSERT_LT(static_cast<std::size_t>(status), wire::kDecodeStatusCount);
    if (status == wire::DecodeStatus::kOk) {
      // Flips can land in don't-care bytes (payload zeros, nonce bits) and
      // still parse — but then the message must be fully formed.
      ASSERT_NE(out.msg, nullptr);
      EXPECT_EQ(out.msg->wire_size(), frame.size());
      ++accepted;
    } else {
      EXPECT_EQ(out.msg, nullptr);
      ++rejected;
    }
  }
  // The grammar is dense in places (nonces, ids), so some flips survive;
  // most must not.
  EXPECT_GT(rejected, accepted);
}

TEST_F(WireCodecTest, SeededLengthLieFuzzNeverCrashesTheDecoder) {
  std::mt19937 rng(42);
  auto msgs = all_messages();
  for (int round = 0; round < 2000; ++round) {
    const auto& msg = *msgs[rng() % msgs.size()];
    wire::FrameBuffer frame = encode_frame(msg);
    // Lie in the body-length field, and independently truncate/extend the
    // datagram itself.
    std::uint32_t lie = rng() % (2 * frame.size() + 4);
    std::memcpy(frame.data() + 8, &lie, sizeof lie);
    std::size_t len = rng() % (frame.size() + 8);
    frame.resize(std::max(frame.size(), len), 0);
    wire::Decoded out;
    wire::DecodeStatus status =
        wire::decode(frame.data(), len, arena_, kNow, out);
    ASSERT_LT(static_cast<std::size_t>(status), wire::kDecodeStatusCount);
    if (status != wire::DecodeStatus::kOk) {
      EXPECT_EQ(out.msg, nullptr);
    }
  }
}

TEST_F(WireCodecTest, RandomGarbageIsRejected) {
  std::mt19937 rng(7);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(rng() % 512);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    wire::Decoded out;
    wire::DecodeStatus status =
        wire::decode(junk.data(), junk.size(), arena_, kNow, out);
    // Random bytes essentially never spell a valid frame (magic + version +
    // zero flags + exact length), and must never crash.
    if (status == wire::DecodeStatus::kOk) {
      ASSERT_NE(out.msg, nullptr);
    } else {
      EXPECT_EQ(out.msg, nullptr);
    }
  }
}

}  // namespace
}  // namespace gocast

// Tests for the tree protocol: heartbeat-driven parent selection, shortest
// latency paths, parent/child symmetry, failover, epochs, and freezing.
#include "tree/tree_manager.h"

#include <gtest/gtest.h>

#include "protocol_test_shell.h"

namespace gocast::tree {
namespace {

using testing::ShellCluster;

overlay::OverlayParams frozen_overlay() {
  // Tree tests pin the overlay: links are bootstrapped, maintenance off.
  overlay::OverlayParams p;
  p.target_rand_degree = 1;
  p.target_near_degree = 5;
  return p;
}

/// Builds a line topology 0-1-2-...-(n-1) with bootstrap links.
void make_line(ShellCluster& cluster) {
  for (NodeId id = 0; id + 1 < cluster.size(); ++id) {
    cluster.node(id).overlay().bootstrap_link(id + 1, overlay::LinkKind::kNearby);
    cluster.node(id + 1).overlay().bootstrap_link(id, overlay::LinkKind::kNearby);
  }
}

TEST(TreeManager, HeartbeatBuildsSpanningParentsOnLine) {
  ShellCluster cluster(5, frozen_overlay(), /*with_tree=*/true);
  make_line(cluster);
  for (NodeId id = 0; id < 5; ++id) cluster.node(id).overlay().freeze();
  cluster.node(0).tree().become_root();
  cluster.start_all();
  cluster.engine().run_until(20.0);

  EXPECT_TRUE(cluster.node(0).tree().is_root());
  for (NodeId id = 1; id < 5; ++id) {
    EXPECT_EQ(cluster.node(id).tree().parent(), id - 1) << "node " << id;
    // Parent registered us as a child (symmetric tree links).
    EXPECT_TRUE(cluster.node(id - 1).tree().children().count(id));
  }
}

TEST(TreeManager, RootDistanceAccumulatesLatency) {
  ShellCluster cluster(4, frozen_overlay(), /*with_tree=*/true);
  make_line(cluster);
  for (NodeId id = 0; id < 4; ++id) cluster.node(id).overlay().freeze();
  cluster.node(0).tree().become_root();
  cluster.start_all();
  cluster.engine().run_until(20.0);

  double hop = cluster.network().one_way(0, 1);
  EXPECT_NEAR(cluster.node(1).tree().root_distance(), hop, 1e-6);
  EXPECT_NEAR(cluster.node(3).tree().root_distance(), 3 * hop, 1e-6);
}

TEST(TreeManager, PrefersShorterLatencyPath) {
  // Diamond: 0-1, 0-2, 1-3, 2-3 where ring distances make the path through
  // 1 shorter for node 3? On a ring of 8 sites, nodes at sites 0,1,4,5:
  // 3(site5)-1(site1): arc 4 = max latency; 3(site5)-2(site4): arc 1.
  ShellCluster cluster(4, frozen_overlay(), /*with_tree=*/true, {}, 0.08);
  auto link = [&](NodeId a, NodeId b) {
    cluster.node(a).overlay().bootstrap_link(b, overlay::LinkKind::kNearby);
    cluster.node(b).overlay().bootstrap_link(a, overlay::LinkKind::kNearby);
  };
  // Sites: node i at site i on an 8-node ring? ShellCluster maps site=id
  // with n sites; here n=4, max arc 2. one_way(0,1)=0.04, (0,2)=0.08,
  // (1,3)=0.08, (2,3)=0.04.
  link(0, 1);
  link(0, 2);
  link(1, 3);
  link(2, 3);
  for (NodeId id = 0; id < 4; ++id) cluster.node(id).overlay().freeze();
  cluster.node(0).tree().become_root();
  cluster.start_all();
  cluster.engine().run_until(40.0);

  // Path costs to node 3: via 1 = 0.04+0.08 = 0.12; via 2 = 0.08+0.04 = 0.12.
  // Equal: accept either, but parent must be 1 or 2, never 0.
  NodeId parent = cluster.node(3).tree().parent();
  EXPECT_TRUE(parent == 1 || parent == 2);
  // Nodes 1 and 2 hang directly off the root.
  EXPECT_EQ(cluster.node(1).tree().parent(), 0u);
  EXPECT_EQ(cluster.node(2).tree().parent(), 0u);
}

TEST(TreeManager, TreeNeighborsAreParentPlusChildren) {
  ShellCluster cluster(3, frozen_overlay(), /*with_tree=*/true);
  make_line(cluster);
  for (NodeId id = 0; id < 3; ++id) cluster.node(id).overlay().freeze();
  cluster.node(0).tree().become_root();
  cluster.start_all();
  cluster.engine().run_until(20.0);

  auto mid = cluster.node(1).tree().tree_neighbors();
  EXPECT_EQ(mid.size(), 2u);
  EXPECT_TRUE(cluster.node(1).tree().is_tree_neighbor(0));
  EXPECT_TRUE(cluster.node(1).tree().is_tree_neighbor(2));
  EXPECT_FALSE(cluster.node(0).tree().is_tree_neighbor(2));
}

TEST(TreeManager, ParentFailoverUsesCachedDistances) {
  // Node 3 connects to both 1 and 2; when its parent dies it must fail over
  // to the alternative without waiting for the next heartbeat.
  ShellCluster cluster(4, frozen_overlay(), /*with_tree=*/true);
  auto link = [&](NodeId a, NodeId b) {
    cluster.node(a).overlay().bootstrap_link(b, overlay::LinkKind::kNearby);
    cluster.node(b).overlay().bootstrap_link(a, overlay::LinkKind::kNearby);
  };
  link(0, 1);
  link(0, 2);
  link(1, 3);
  link(2, 3);
  for (NodeId id = 0; id < 4; ++id) cluster.node(id).overlay().freeze();
  cluster.node(0).tree().become_root();
  cluster.start_all();
  cluster.engine().run_until(20.0);

  NodeId parent = cluster.node(3).tree().parent();
  ASSERT_TRUE(parent == 1 || parent == 2);
  NodeId alternative = parent == 1 ? 2 : 1;

  // Simulate the overlay discovering the parent's death.
  cluster.node(3).overlay().on_peer_failure(parent);
  EXPECT_EQ(cluster.node(3).tree().parent(), alternative);
}

TEST(TreeManager, RootFailureTriggersNeighborTakeover) {
  TreeParams tree_params;
  tree_params.heartbeat_period = 1.0;  // speed the test up
  ShellCluster cluster(4, frozen_overlay(), /*with_tree=*/true, tree_params);
  make_line(cluster);
  for (NodeId id = 0; id < 4; ++id) cluster.node(id).overlay().freeze();
  cluster.node(0).tree().become_root();
  cluster.start_all();
  cluster.engine().run_until(10.0);
  EXPECT_TRUE(cluster.node(0).tree().is_root());

  // Kill the root; its neighbor (node 1) should take over within a few
  // heartbeat periods, and everyone adopts the new epoch.
  cluster.network().fail_node(0);
  cluster.node(1).overlay().on_peer_failure(0);
  cluster.engine().run_until(30.0);

  int roots = 0;
  NodeId new_root = kInvalidNode;
  for (NodeId id = 1; id < 4; ++id) {
    if (cluster.node(id).tree().is_root()) {
      ++roots;
      new_root = id;
    }
  }
  EXPECT_EQ(roots, 1);
  EXPECT_NE(new_root, kInvalidNode);
  for (NodeId id = 1; id < 4; ++id) {
    EXPECT_EQ(cluster.node(id).tree().epoch().root, new_root);
  }
}

TEST(TreeManager, HigherEpochWinsOverLower) {
  Epoch low{1, 5};
  Epoch high{2, 9};
  EXPECT_TRUE(high.beats(low));
  EXPECT_FALSE(low.beats(high));
  // Same term: smaller id wins.
  Epoch a{3, 2};
  Epoch b{3, 7};
  EXPECT_TRUE(a.beats(b));
  EXPECT_FALSE(b.beats(a));
  EXPECT_FALSE(a.beats(a));
}

TEST(TreeManager, FrozenTreeDoesNotRepair) {
  ShellCluster cluster(4, frozen_overlay(), /*with_tree=*/true);
  auto link = [&](NodeId a, NodeId b) {
    cluster.node(a).overlay().bootstrap_link(b, overlay::LinkKind::kNearby);
    cluster.node(b).overlay().bootstrap_link(a, overlay::LinkKind::kNearby);
  };
  link(0, 1);
  link(0, 2);
  link(1, 3);
  link(2, 3);
  for (NodeId id = 0; id < 4; ++id) cluster.node(id).overlay().freeze();
  cluster.node(0).tree().become_root();
  cluster.start_all();
  cluster.engine().run_until(20.0);

  NodeId parent = cluster.node(3).tree().parent();
  cluster.node(3).tree().freeze();
  cluster.node(3).overlay().on_peer_failure(parent);
  // Frozen: the parent is cleared but NOT replaced.
  EXPECT_EQ(cluster.node(3).tree().parent(), kInvalidNode);
}

TEST(TreeManager, ChildJoinFromNonNeighborIgnored) {
  ShellCluster cluster(3, frozen_overlay(), /*with_tree=*/true);
  cluster.node(0).tree().become_root();
  // Node 2 is not node 0's overlay neighbor; a stray join must be ignored.
  ChildJoinMsg join(Epoch{1, 0}, net::PeerDegrees{});
  cluster.node(0).tree().on_child_join(2, join);
  EXPECT_TRUE(cluster.node(0).tree().children().empty());
}

TEST(TreeManager, DisabledTreeStaysInert) {
  TreeParams params;
  params.enabled = false;
  ShellCluster cluster(3, frozen_overlay(), /*with_tree=*/true, params);
  make_line(cluster);
  cluster.start_all();
  cluster.engine().run_until(30.0);
  for (NodeId id = 0; id < 3; ++id) {
    EXPECT_EQ(cluster.node(id).tree().parent(), kInvalidNode);
    EXPECT_TRUE(cluster.node(id).tree().tree_neighbors().empty());
  }
}

}  // namespace
}  // namespace gocast::tree

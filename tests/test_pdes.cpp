// Sharded conservative-PDES tests (DESIGN.md §11): ordered engine admission,
// cross-partition lookahead queries, window/control/mailbox semantics of
// ShardedEngine, the degenerate-lookahead fallback, and — the headline — that
// full-protocol runs are byte-identical at every shard count, including under
// churn and scripted faults.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gocast/system.h"
#include "harness/scenario.h"
#include "net/latency_model.h"
#include "sim/engine.h"
#include "sim/sharded_engine.h"

namespace gocast {
namespace {

// -- engine primitives --

TEST(ScheduleAtOrdered, PopsInTimeThenKeyOrder) {
  sim::Engine engine;
  std::vector<int> order;
  // Admission order deliberately scrambled: same time, keys 3 < 7 < 9.
  engine.schedule_at_ordered(1.0, 9, [&] { order.push_back(9); });
  engine.schedule_at_ordered(1.0, 3, [&] { order.push_back(3); });
  engine.schedule_at_ordered(0.5, 7, [&] { order.push_back(70); });
  engine.schedule_at_ordered(1.0, 7, [&] { order.push_back(7); });
  engine.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{70, 3, 7, 9}));
}

TEST(ScheduleAtOrdered, RunBeforeLeavesWindowEdgeEvents) {
  sim::Engine engine;
  std::vector<int> order;
  engine.schedule_at_ordered(1.0, 1, [&] { order.push_back(1); });
  engine.schedule_at_ordered(2.0, 2, [&] { order.push_back(2); });
  EXPECT_EQ(engine.run_before(2.0), 1u);  // strictly-before only
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  engine.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

// -- lookahead queries --

TEST(MinCrossPartition, DefaultScanFindsBoundaryArc) {
  // Ring of 10 sites, antipodal latency 0.1 => one step costs 0.02.
  net::RingLatencyModel model(10, 0.1);
  std::vector<std::uint32_t> partition(10, 0);
  for (std::uint32_t s = 5; s < 10; ++s) partition[s] = 1;
  // Closest cross-partition pairs are the boundary neighbors (4,5) and (9,0).
  EXPECT_DOUBLE_EQ(model.min_cross_partition_one_way(partition), 0.02);
}

TEST(MinCrossPartition, SinglePartitionIsNever) {
  net::RingLatencyModel model(8, 0.1);
  std::vector<std::uint32_t> partition(8, 0);
  EXPECT_EQ(model.min_cross_partition_one_way(partition), kNever);
}

TEST(MinCrossPartition, MatrixSweepHonorsPartitions) {
  // 3 sites; (0,1) close, (0,2)/(1,2) far.
  std::vector<float> matrix{
      0.000f, 0.002f, 0.050f,  //
      0.002f, 0.000f, 0.040f,  //
      0.050f, 0.040f, 0.000f,  //
  };
  net::MatrixLatencyModel model(3, std::move(matrix));
  std::vector<std::uint32_t> split_close{0, 1, 1};
  EXPECT_DOUBLE_EQ(model.min_cross_partition_one_way(split_close),
                   0.0020000000949949026);  // float 0.002 widened
  std::vector<std::uint32_t> isolate_far{0, 0, 1};
  EXPECT_NEAR(model.min_cross_partition_one_way(isolate_far), 0.040, 1e-9);
  std::vector<std::uint32_t> one{0, 0, 0};
  EXPECT_EQ(model.min_cross_partition_one_way(one), kNever);
}

// -- ShardedEngine window semantics --

TEST(ShardedEngineUnit, ControlsFireBeforeSameTimeShardEvents) {
  sim::ShardedEngine engine({.shards = 2, .lookahead = 0.01, .serial = true});
  std::vector<int> order;
  engine.shard(0).schedule_at_ordered(1.0, 42, [&] { order.push_back(1); });
  engine.schedule_control(1.0, [&] { order.push_back(0); });
  engine.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.processed(), 1u);
  EXPECT_EQ(engine.pending(), 0u);
}

TEST(ShardedEngineUnit, SameTimeControlsFireInAdmissionOrder) {
  sim::ShardedEngine engine({.shards = 2, .lookahead = 0.01, .serial = true});
  std::vector<int> order;
  engine.schedule_control(1.0, [&] { order.push_back(0); });
  engine.schedule_control(1.0, [&] { order.push_back(1); });
  engine.schedule_control(0.5, [&] { order.push_back(-1); });
  engine.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{-1, 0, 1}));
}

TEST(ShardedEngineUnit, MailboxDeliversInTimeKeyOrder) {
  sim::ShardedEngine engine({.shards = 2, .lookahead = 0.01, .serial = true});
  std::vector<int> order;
  // Cross-shard mail posted out of key order; the destination engine must
  // pop in (time, key) order after the barrier drains the mailbox.
  engine.post(0, 1, 1.0, 7, sim::InlineCallback([&] { order.push_back(7); }));
  engine.post(0, 1, 1.0, 3, sim::InlineCallback([&] { order.push_back(3); }));
  engine.post(0, 1, 0.5, 9, sim::InlineCallback([&] { order.push_back(90); }));
  EXPECT_EQ(engine.pending(), 3u);
  engine.run_until(2.0);
  EXPECT_EQ(order, (std::vector<int>{90, 3, 7}));
}

// -- degenerate-lookahead fallback --

TEST(ShardedFallback, DegenerateLookaheadFallsBackToSerial) {
  // Ring with 16 sites and 4 ms antipodal latency: a boundary step is
  // 0.5 ms, below the 0.8 ms floor, so sharding must fall back.
  core::SystemConfig config;
  config.node_count = 32;
  config.seed = 7;
  config.latency = std::make_shared<net::RingLatencyModel>(16, 0.004);
  config.shard_count = 4;
  core::System system(config);
  EXPECT_FALSE(system.sharded());
  EXPECT_EQ(system.shard_count(), 1u);
  EXPECT_DOUBLE_EQ(system.pdes_lookahead(), 0.0);
}

TEST(ShardedFallback, SingleSiteTopologyFallsBackToSerial) {
  core::SystemConfig config;
  config.node_count = 16;
  config.seed = 7;
  // A 1x1 matrix: every node on the same site, so min(shards, sites) == 1
  // and there is nothing to partition.
  config.latency = std::make_shared<net::MatrixLatencyModel>(
      1, std::vector<float>{0.0f});
  config.shard_count = 4;
  core::System system(config);
  EXPECT_FALSE(system.sharded());
  EXPECT_EQ(system.shard_count(), 1u);
}

TEST(ShardedFallback, MultiGroupFallsBackToSerial) {
  core::SystemConfig config;
  config.node_count = 64;
  config.seed = 7;
  config.latency = core::default_latency_model(7, 96);
  config.shard_count = 2;
  config.groups.group_count = 4;
  core::System system(config);
  EXPECT_FALSE(system.sharded());
}

// -- shard engagement on the default (synthetic King) model --

TEST(ShardedSystem, KingModelShardsEngage) {
  core::SystemConfig config;
  config.node_count = 64;
  config.seed = 5;
  config.latency = core::default_latency_model(5, 256);
  config.shard_count = 4;
  core::System system(config);
  ASSERT_TRUE(system.sharded());
  EXPECT_EQ(system.shard_count(), 4u);
  EXPECT_GE(system.pdes_lookahead(), config.pdes_lookahead_floor);
}

// -- full-protocol shard invariance --

harness::ScenarioConfig small_scenario(std::size_t shards) {
  harness::ScenarioConfig config;
  config.protocol = harness::Protocol::kGoCast;
  config.node_count = 192;
  config.seed = 5;
  config.warmup = 30.0;
  config.message_count = 12;
  config.message_rate = 100.0;
  config.drain = 10.0;
  config.shards = shards;
  return config;
}

void expect_identical(const harness::ScenarioResult& a,
                      const harness::ScenarioResult& b) {
  // Byte-identical, not approximately equal: EXPECT_EQ on doubles.
  EXPECT_EQ(a.delivery_checksum, b.delivery_checksum);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.alive_nodes, b.alive_nodes);
  EXPECT_EQ(a.report.messages, b.report.messages);
  EXPECT_EQ(a.report.delivered_fraction, b.report.delivered_fraction);
  EXPECT_EQ(a.report.delay.mean(), b.report.delay.mean());
  EXPECT_EQ(a.report.p50, b.report.p50);
  EXPECT_EQ(a.report.p99, b.report.p99);
  EXPECT_EQ(a.report.max_delay, b.report.max_delay);
  EXPECT_EQ(a.traffic.total_sent().messages, b.traffic.total_sent().messages);
  EXPECT_EQ(a.traffic.total_sent().bytes, b.traffic.total_sent().bytes);
  EXPECT_EQ(a.pulls_sent, b.pulls_sent);
  EXPECT_EQ(a.gossip_messages, b.gossip_messages);
  EXPECT_EQ(a.fault_log, b.fault_log);
}

TEST(ShardedScenario, KingModelInvariantAcrossShardCounts) {
  auto latency = core::default_latency_model(5, 256);
  harness::ScenarioConfig c1 = small_scenario(1);
  c1.latency = latency;
  harness::ScenarioConfig c2 = small_scenario(2);
  c2.latency = latency;
  harness::ScenarioConfig c4 = small_scenario(4);
  c4.latency = latency;
  auto r1 = harness::run_scenario(c1);
  auto r2 = harness::run_scenario(c2);
  auto r4 = harness::run_scenario(c4);
  EXPECT_GT(r1.deliveries, 0u);
  EXPECT_NE(r1.delivery_checksum, 0u);
  expect_identical(r1, r2);
  expect_identical(r1, r4);
}

TEST(ShardedScenario, MatrixModelInvariantAcrossShardCounts) {
  // Hand-built 48-site matrix: every cross-site latency >= 2 ms (so the
  // lookahead clears the floor at any contiguous partitioning) and all the
  // latencies into a given site are distinct, so no two cross-origin sends
  // arrive at the same node at the same instant. One node per site for the
  // same reason — exact arrival ties are the one regime where the legacy
  // serial pop order (admission seq) and the sharded canonical order
  // (origin, counter) may disagree; see DESIGN.md §11.
  const std::size_t sites = 48;
  std::vector<float> matrix(sites * sites, 0.0f);
  for (std::size_t i = 0; i < sites; ++i) {
    for (std::size_t j = 0; j < sites; ++j) {
      if (i == j) continue;
      matrix[i * sites + j] =
          0.002f + 0.00005f * static_cast<float>(i + j) +
          0.000001f * static_cast<float>(i * j);
    }
  }
  auto latency = std::make_shared<net::MatrixLatencyModel>(sites,
                                                           std::move(matrix));
  harness::ScenarioConfig c1 = small_scenario(1);
  c1.node_count = 48;
  c1.latency = latency;
  harness::ScenarioConfig c4 = c1;
  c4.shards = 4;
  auto r1 = harness::run_scenario(c1);
  auto r4 = harness::run_scenario(c4);
  EXPECT_GT(r1.deliveries, 0u);
  expect_identical(r1, r4);
}

TEST(ShardedScenario, ChurnAndFaultsInvariantAcrossShardCounts) {
  auto latency = core::default_latency_model(9, 256);
  harness::ScenarioConfig c1 = small_scenario(1);
  c1.seed = 9;
  c1.latency = latency;
  c1.drain = 20.0;
  // Crash a random 10% mid-injection, recover some during the drain: the
  // FaultInjector's victim picks must be shard-invariant (control barriers).
  c1.fault_spec = "30.05:crash:frac=0.1; 30.2:recover:count=5";
  harness::ScenarioConfig c2 = c1;
  c2.shards = 2;
  harness::ScenarioConfig c4 = c1;
  c4.shards = 4;
  auto r1 = harness::run_scenario(c1);
  auto r2 = harness::run_scenario(c2);
  auto r4 = harness::run_scenario(c4);
  EXPECT_GT(r1.deliveries, 0u);
  ASSERT_EQ(r1.fault_log.size(), 2u);
  expect_identical(r1, r2);
  expect_identical(r1, r4);
}

TEST(ShardedSystem, SerialWindowsMatchThreadedWindows) {
  auto run = [](bool serial) {
    core::SystemConfig config;
    config.node_count = 96;
    config.seed = 11;
    config.latency = core::default_latency_model(11, 96);
    config.shard_count = 4;
    config.pdes_serial = serial;
    core::System system(config);
    EXPECT_TRUE(system.sharded());
    system.start();
    system.run_until(20.0);
    for (std::size_t m = 0; m < 6; ++m) {
      system.schedule_control(20.0 + 0.25 * static_cast<double>(m),
                              [&system] {
                                system.node(system.random_alive_node())
                                    .multicast(512);
                              });
    }
    system.run_until(30.0);
    std::uint64_t checksum = 0xcbf29ce484222325ULL;
    auto mix = [&checksum](std::uint64_t v) {
      checksum = (checksum ^ v) * 0x100000001b3ULL;
    };
    for (NodeId id = 0; id < system.size(); ++id) {
      mix(system.node(id).deliveries_count());
      mix(system.node(id).duplicates_count());
    }
    mix(system.network().traffic().total_sent().messages);
    mix(system.network().traffic().total_sent().bytes);
    mix(system.events_processed());
    return checksum;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace gocast

// The parallel scenario runner: deterministic seed derivation, spec-order
// merging at every thread count, exception propagation, and — the property
// the whole design rests on — concurrent scenario runs matching their serial
// goldens exactly.
#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.h"
#include "harness/runner.h"
#include "harness/scenario.h"

namespace gocast::harness {
namespace {

// ---------------------------------------------------------------------------
// derive_job_seed
// ---------------------------------------------------------------------------

TEST(DeriveJobSeed, PureFunctionOfBaseAndIndex) {
  EXPECT_EQ(derive_job_seed(42, 0), derive_job_seed(42, 0));
  EXPECT_EQ(derive_job_seed(42, 17), derive_job_seed(42, 17));
  EXPECT_NE(derive_job_seed(42, 0), derive_job_seed(43, 0));
}

TEST(DeriveJobSeed, AdjacentIndicesAreWellSeparated) {
  std::vector<std::uint64_t> seen;
  for (std::size_t i = 0; i < 256; ++i) seen.push_back(derive_job_seed(7, i));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

// ---------------------------------------------------------------------------
// SweepSpec
// ---------------------------------------------------------------------------

TEST(SweepSpec, EmptyAxesCollapseToTheBaseConfig) {
  SweepSpec spec;
  spec.base.protocol = Protocol::kPushGossip;
  spec.base.node_count = 96;
  spec.base.seed = 5;
  auto jobs = spec.jobs();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].index, 0u);
  EXPECT_EQ(jobs[0].config.protocol, Protocol::kPushGossip);
  EXPECT_EQ(jobs[0].config.node_count, 96u);
  EXPECT_EQ(jobs[0].config.seed, 5u);
}

TEST(SweepSpec, CrossProductIsMaterializedInSpecOrder) {
  SweepSpec spec;
  spec.protocols = {Protocol::kGoCast, Protocol::kPushGossip};
  spec.node_counts = {64, 128};
  spec.seeds = {1, 2};
  spec.overrides.push_back({"f=5", [](ScenarioConfig& c) { c.fanout = 5; }});
  spec.overrides.push_back({"f=9", [](ScenarioConfig& c) { c.fanout = 9; }});
  auto jobs = spec.jobs();
  ASSERT_EQ(jobs.size(), 16u);
  // Outermost protocol, innermost override; indices are the flat positions.
  EXPECT_EQ(jobs[0].config.protocol, Protocol::kGoCast);
  EXPECT_EQ(jobs[0].config.node_count, 64u);
  EXPECT_EQ(jobs[0].config.seed, 1u);
  EXPECT_EQ(jobs[0].config.fanout, 5);
  EXPECT_EQ(jobs[1].label, "f=9");
  EXPECT_EQ(jobs[2].config.seed, 2u);
  EXPECT_EQ(jobs[4].config.node_count, 128u);
  EXPECT_EQ(jobs[8].config.protocol, Protocol::kPushGossip);
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].index, i);
}

TEST(SweepSpec, ReplicationsDeriveSeedsFromTheJobIndexNotCompletionOrder) {
  SweepSpec spec;
  spec.base.seed = 11;
  spec.replications = 3;
  auto jobs = spec.jobs();
  ASSERT_EQ(jobs.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    EXPECT_EQ(jobs[r].config.seed, derive_job_seed(11, r));
  }
  // The same replication axis reappears identically for every protocol, so
  // cross-protocol comparisons share seeds.
  spec.protocols = {Protocol::kGoCast, Protocol::kPushGossip};
  auto crossed = spec.jobs();
  ASSERT_EQ(crossed.size(), 6u);
  EXPECT_EQ(crossed[0].config.seed, crossed[3].config.seed);
  EXPECT_EQ(crossed[2].config.seed, crossed[5].config.seed);
}

TEST(SweepSpec, OverridesMayRetargetTheSeed) {
  SweepSpec spec;
  spec.base.seed = 1;
  spec.overrides.push_back(
      {"pinned", [](ScenarioConfig& c) { c.seed = 1005; }});
  auto jobs = spec.jobs();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].config.seed, 1005u);
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

TEST(Runner, MergesResultsInIndexOrderAtEveryThreadCount) {
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    Runner runner(threads);
    EXPECT_EQ(runner.threads(), threads);
    auto results = runner.run<std::size_t>(
        37, [](std::size_t i) { return i * i + 1; });
    ASSERT_EQ(results.size(), 37u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], i * i + 1);
    }
  }
}

TEST(Runner, RunsEveryJobExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  Runner runner(4);
  (void)runner.run<int>(64, [&hits](std::size_t i) {
    hits[i].fetch_add(1);
    return 0;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Runner, ZeroJobsIsANoOp) {
  Runner runner(4);
  EXPECT_TRUE(runner.run<int>(0, [](std::size_t) { return 1; }).empty());
}

TEST(Runner, ThreadedFailureRethrowsTheLowestIndexedException) {
  Runner runner(4);
  std::atomic<int> ran{0};
  try {
    (void)runner.run<int>(16, [&ran](std::size_t i) -> int {
      ran.fetch_add(1);
      if (i == 3) throw std::runtime_error("job 3 failed");
      if (i == 7) throw std::runtime_error("job 7 failed");
      return 0;
    });
    FAIL() << "expected a rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "job 3 failed");
  }
  // A failing job never takes down the pool: every job still ran.
  EXPECT_EQ(ran.load(), 16);
}

TEST(Runner, SerialPathPropagatesImmediatelyLikeTheHistoricalLoop) {
  Runner runner(1);
  int ran = 0;
  EXPECT_THROW((void)runner.run<int>(8,
                                     [&ran](std::size_t i) -> int {
                                       ++ran;
                                       if (i == 2) throw std::runtime_error("x");
                                       return 0;
                                     }),
               std::runtime_error);
  EXPECT_EQ(ran, 3);  // jobs after the failure were not started
}

// ---------------------------------------------------------------------------
// parallel_for (the sub-harness primitive the King generator uses)
// ---------------------------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexOnce) {
  for (std::size_t threads : {1u, 3u, 8u}) {
    std::vector<std::atomic<int>> hits(100);
    parallel_for(100, threads, [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1);
  }
}

TEST(ParallelFor, RethrowsTheLowestCapturedFailure) {
  EXPECT_THROW(parallel_for(32, 4,
                            [](std::size_t i) {
                              if (i % 9 == 5) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// Scenario-level determinism: parallel == serial, byte for byte
// ---------------------------------------------------------------------------

ScenarioConfig small_scenario(Protocol protocol, std::uint64_t seed) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.node_count = 64;
  config.seed = seed;
  config.warmup = 20.0;
  config.message_count = 8;
  config.message_rate = 4.0;
  config.drain = 10.0;
  return config;
}

void expect_identical(const ScenarioResult& a, const ScenarioResult& b) {
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.alive_nodes, b.alive_nodes);
  EXPECT_EQ(a.sim_end, b.sim_end);
  EXPECT_EQ(a.report.delivered_fraction, b.report.delivered_fraction);
  EXPECT_EQ(a.report.max_delay, b.report.max_delay);
  EXPECT_EQ(a.report.p99, b.report.p99);
  EXPECT_EQ(a.traffic.total_sent().messages, b.traffic.total_sent().messages);
  EXPECT_EQ(a.traffic.total_sent().bytes, b.traffic.total_sent().bytes);
  EXPECT_EQ(a.traffic.delivered(), b.traffic.delivered());
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].delay, b.curve[i].delay);
    EXPECT_EQ(a.curve[i].fraction, b.curve[i].fraction);
  }
}

TEST(Runner, ConcurrentEnginesMatchTheirSerialGoldens) {
  // Two different scenarios, run back-to-back on one thread (the golden),
  // then concurrently on two threads: every Engine/Network/System is
  // job-local, so the concurrent results must match exactly.
  std::vector<ScenarioConfig> configs = {
      small_scenario(Protocol::kGoCast, 5),
      small_scenario(Protocol::kPushGossip, 6)};

  std::vector<ScenarioResult> golden;
  for (const auto& config : configs) golden.push_back(run_scenario(config));

  Runner runner(2);
  auto concurrent = runner.run<ScenarioResult>(
      configs.size(),
      [&configs](std::size_t i) { return run_scenario(configs[i]); });

  ASSERT_EQ(concurrent.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    expect_identical(golden[i], concurrent[i]);
  }
}

TEST(Runner, SweepResultsAreIdenticalAtEveryThreadCount) {
  SweepSpec spec;
  spec.base = small_scenario(Protocol::kGoCast, 9);
  spec.protocols = {Protocol::kGoCast, Protocol::kPushGossip};
  spec.replications = 2;

  auto serial = run_sweep(spec, Runner(1));
  auto parallel = run_sweep(spec, Runner(4));
  ASSERT_EQ(serial.size(), 4u);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].job.index, parallel[i].job.index);
    EXPECT_EQ(serial[i].job.config.seed, parallel[i].job.config.seed);
    expect_identical(serial[i].result, parallel[i].result);
  }
}

}  // namespace
}  // namespace gocast::harness

// Property-based tests of the event engine against a reference model:
// random schedule/cancel workloads must fire exactly the non-canceled
// events, in nondecreasing time order, FIFO within equal timestamps.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/engine.h"

namespace gocast::sim {
namespace {

class EngineModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineModelTest, RandomWorkloadMatchesReferenceModel) {
  Rng rng(GetParam());
  Engine engine;

  struct Expected {
    SimTime time;
    std::uint64_t order;  // scheduling order for tie-breaks
    int tag;
  };
  std::vector<Expected> model;
  std::vector<std::pair<SimTime, int>> fired;
  std::map<int, EventId> handles;
  std::uint64_t order = 0;
  int next_tag = 0;

  for (int step = 0; step < 2000; ++step) {
    double roll = rng.next_unit();
    if (roll < 0.7 || handles.empty()) {
      // Schedule.
      SimTime t = rng.next_range(0.0, 100.0);
      // Quantize to force plenty of exact ties.
      t = std::floor(t * 10.0) / 10.0;
      int tag = next_tag++;
      EventId id = engine.schedule_at(
          t, [&fired, &engine, tag] { fired.emplace_back(engine.now(), tag); });
      handles[tag] = id;
      model.push_back(Expected{t, order++, tag});
    } else {
      // Cancel a random outstanding event.
      auto it = handles.begin();
      std::advance(it, static_cast<long>(rng.next_below(handles.size())));
      if (engine.cancel(it->second)) {
        int tag = it->first;
        model.erase(std::remove_if(model.begin(), model.end(),
                                   [tag](const Expected& e) {
                                     return e.tag == tag;
                                   }),
                    model.end());
      }
      handles.erase(it);
    }
  }

  engine.run();

  std::stable_sort(model.begin(), model.end(), [](const Expected& a,
                                                  const Expected& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.order < b.order;
  });

  ASSERT_EQ(fired.size(), model.size());
  for (std::size_t i = 0; i < fired.size(); ++i) {
    EXPECT_DOUBLE_EQ(fired[i].first, model[i].time) << "index " << i;
    EXPECT_EQ(fired[i].second, model[i].tag) << "index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

class StatsModelTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsModelTest, SummaryMatchesBatchComputation) {
  Rng rng(GetParam());
  Summary summary;
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) {
    double x = rng.next_gaussian(5.0, 3.0);
    summary.add(x);
    values.push_back(x);
  }
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());

  EXPECT_NEAR(summary.mean(), mean, 1e-9);
  EXPECT_NEAR(summary.variance(), var, 1e-6);
  EXPECT_DOUBLE_EQ(summary.min(), *std::min_element(values.begin(), values.end()));
  EXPECT_DOUBLE_EQ(summary.max(), *std::max_element(values.begin(), values.end()));
}

TEST_P(StatsModelTest, PercentilesBracketSortedValues) {
  Rng rng(GetParam() + 100);
  std::vector<double> values;
  for (int i = 0; i < 997; ++i) values.push_back(rng.next_range(-50.0, 50.0));
  Percentiles p(values);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    double v = p.at(q);
    EXPECT_GE(v, sorted.front());
    EXPECT_LE(v, sorted.back());
    // Fraction of samples <= v must be close to q.
    auto leq = static_cast<double>(
        std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin());
    EXPECT_NEAR(leq / static_cast<double>(sorted.size()), q, 0.01);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsModelTest, ::testing::Values(7, 11, 19));

}  // namespace
}  // namespace gocast::sim

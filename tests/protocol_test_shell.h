// Minimal node shell for overlay/tree unit tests: wires an OverlayManager
// (and optionally a TreeManager) to the network with a plain dispatcher, so
// protocol layers can be exercised in isolation from the full GoCastNode.
#pragma once

#include <memory>
#include <vector>

#include "membership/partial_view.h"
#include "net/network.h"
#include "overlay/messages.h"
#include "overlay/overlay_manager.h"
#include "tree/messages.h"
#include "tree/tree_manager.h"

namespace gocast::testing {

class ShellNode : public net::Endpoint {
 public:
  ShellNode(NodeId id, net::Network& network, overlay::OverlayParams params,
            bool with_tree = false, tree::TreeParams tree_params = {})
      : id_(id),
        network_(network),
        view_(id, 256, Rng(900 + id)),
        overlay_(id, network, view_, params, Rng(1000 + id)) {
    if (with_tree) {
      tree_ = std::make_unique<tree::TreeManager>(id, network, overlay_,
                                                  tree_params);
      overlay_.add_listener(tree_.get());
    }
    network.set_endpoint(id, this);
  }

  void handle_message(NodeId from, const net::MessagePtr& msg) override {
    if (const net::PeerDegrees* d = msg->peer_degrees()) {
      overlay_.note_peer_degrees(from, *d);
    }
    switch (msg->packet_type()) {
      case overlay::kPktNeighborRequest:
        overlay_.on_neighbor_request(
            from, static_cast<const overlay::NeighborRequestMsg&>(*msg));
        return;
      case overlay::kPktNeighborAccept:
        overlay_.on_neighbor_accept(
            from, static_cast<const overlay::NeighborAcceptMsg&>(*msg));
        return;
      case overlay::kPktNeighborReject:
        overlay_.on_neighbor_reject(
            from, static_cast<const overlay::NeighborRejectMsg&>(*msg));
        return;
      case overlay::kPktNeighborDrop:
        overlay_.on_neighbor_drop(
            from, static_cast<const overlay::NeighborDropMsg&>(*msg));
        return;
      case overlay::kPktLinkTransfer:
        overlay_.on_link_transfer(
            from, static_cast<const overlay::LinkTransferMsg&>(*msg));
        return;
      case overlay::kPktPing:
        overlay_.on_ping(from, static_cast<const overlay::PingMsg&>(*msg));
        return;
      case overlay::kPktPong:
        overlay_.on_pong(from, static_cast<const overlay::PongMsg&>(*msg));
        return;
      case tree::kPktHeartbeat:
        if (tree_) {
          tree_->on_heartbeat(from, static_cast<const tree::HeartbeatMsg&>(*msg));
        }
        return;
      case tree::kPktChildJoin:
        if (tree_) {
          tree_->on_child_join(from, static_cast<const tree::ChildJoinMsg&>(*msg));
        }
        return;
      case tree::kPktChildLeave:
        if (tree_) {
          tree_->on_child_leave(from,
                                static_cast<const tree::ChildLeaveMsg&>(*msg));
        }
        return;
      default:
        return;
    }
  }

  void handle_send_failure(NodeId to, const net::MessagePtr& msg) override {
    (void)msg;
    overlay_.on_peer_failure(to);
  }

  void seed_member(NodeId other) {
    membership::MemberEntry entry;
    entry.id = other;
    view_.insert(entry);
  }

  NodeId id() const { return id_; }
  membership::PartialView& view() { return view_; }
  overlay::OverlayManager& overlay() { return overlay_; }
  tree::TreeManager& tree() { return *tree_; }
  bool has_tree() const { return tree_ != nullptr; }

 private:
  NodeId id_;
  net::Network& network_;
  membership::PartialView view_;
  overlay::OverlayManager overlay_;
  std::unique_ptr<tree::TreeManager> tree_;
};

/// A tiny cluster of shell nodes on a ring latency model (site i = node i).
class ShellCluster {
 public:
  ShellCluster(std::size_t n, overlay::OverlayParams params,
               bool with_tree = false, tree::TreeParams tree_params = {},
               SimTime max_one_way = 0.08)
      : network_(engine_,
                 std::make_shared<net::RingLatencyModel>(n, max_one_way),
                 net::NetworkConfig{}, Rng(77)) {
    for (std::size_t i = 0; i < n; ++i) {
      network_.add_node(static_cast<std::uint32_t>(i));
    }
    for (std::size_t i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<ShellNode>(
          static_cast<NodeId>(i), network_, params, with_tree, tree_params));
    }
  }

  void seed_full_views() {
    for (auto& node : nodes_) {
      for (auto& other : nodes_) {
        if (other->id() != node->id()) node->seed_member(other->id());
      }
    }
  }

  void start_all() {
    for (auto& node : nodes_) {
      node->overlay().start(0.01 * node->id());
      if (node->has_tree()) node->tree().start(0.01 * node->id());
    }
  }

  sim::Engine& engine() { return engine_; }
  net::Network& network() { return network_; }
  ShellNode& node(NodeId id) { return *nodes_.at(id); }
  std::size_t size() const { return nodes_.size(); }

 private:
  sim::Engine engine_;
  net::Network network_;
  std::vector<std::unique_ptr<ShellNode>> nodes_;
};

}  // namespace gocast::testing

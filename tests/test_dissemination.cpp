// Tests for the dissemination layer: tree push, gossip digests, pulls,
// the pull-delay threshold, duplicate suppression, GC, and the gossip-only
// mode used by the baselines.
#include "gocast/dissemination.h"

#include <gtest/gtest.h>

#include "analysis/delivery_tracker.h"
#include "gocast/system.h"

namespace gocast::core {
namespace {

SystemConfig small_config(std::size_t n, std::uint64_t seed = 3) {
  SystemConfig config;
  config.node_count = n;
  config.seed = seed;
  return config;
}

TEST(Dissemination, TreePushReachesEveryNodeExactlyOnce) {
  SystemConfig tree_only = small_config(32);
  // Give the tree a generous head start so no gossip pull races it: every
  // delivery should then come from exactly one tree push.
  tree_only.node.dissemination.pull_delay_threshold = 2.0;
  System system(tree_only);
  analysis::DeliveryTracker tracker(32);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(60.0);

  tracker.set_recording(true);
  system.node(5).multicast(512);
  system.run_for(5.0);

  auto report = tracker.report(system.alive_nodes());
  EXPECT_EQ(report.messages, 1u);
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 1.0);

  std::uint64_t duplicates = 0;
  for (NodeId id = 0; id < 32; ++id) {
    duplicates += system.node(id).duplicates_count();
  }
  // With an intact tree and the pull threshold, deliveries are unique.
  EXPECT_EQ(duplicates, 0u);
}

TEST(Dissemination, AnyNodeCanStartAMulticast) {
  System system(small_config(16));
  analysis::DeliveryTracker tracker(16);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(60.0);
  tracker.set_recording(true);

  for (NodeId source = 0; source < 16; source += 5) {
    system.node(source).multicast(128);
  }
  system.run_for(5.0);
  auto report = tracker.report(system.alive_nodes());
  EXPECT_EQ(report.messages, 4u);
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 1.0);
}

TEST(Dissemination, MessageIdsArePerSourceSequences) {
  System system(small_config(8));
  system.start();
  MsgId a = system.node(2).multicast(64);
  MsgId b = system.node(2).multicast(64);
  MsgId c = system.node(3).multicast(64);
  EXPECT_EQ(a.origin, 2u);
  EXPECT_EQ(a.seq + 1, b.seq);
  EXPECT_EQ(c.origin, 3u);
  EXPECT_EQ(c.seq, 0u);
}

TEST(Dissemination, GossipOnlyModeStillDeliversEverywhere) {
  SystemConfig config = small_config(24);
  config.node.dissemination.use_tree = false;
  System system(config);
  analysis::DeliveryTracker tracker(24);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(60.0);
  tracker.set_recording(true);

  system.node(0).multicast(256);
  system.run_for(20.0);  // gossip is slower: give it time

  auto report = tracker.report(system.alive_nodes());
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 1.0);
  // Without a tree every remote delivery is a pull.
  std::uint64_t pulls = 0;
  for (NodeId id = 0; id < 24; ++id) {
    pulls += system.node(id).dissemination().pulls_sent();
  }
  EXPECT_GE(pulls, 23u);
}

TEST(Dissemination, GossipRecoversFromBrokenTree) {
  // Freeze everything, then surgically break the tree by killing a cut
  // node: gossip must still deliver to the fragment.
  System system(small_config(24, 11));
  analysis::DeliveryTracker tracker(24);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(60.0);

  // Kill 25% of nodes and freeze repair: tree fragments guaranteed.
  system.fail_random_fraction(0.25);
  system.freeze_all();
  system.run_for(1.0);

  tracker.set_recording(true);
  for (int i = 0; i < 3; ++i) {
    system.node(system.random_alive_node()).multicast(128);
  }
  system.run_for(30.0);

  auto report = tracker.report(system.alive_nodes());
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 1.0);
}

TEST(Dissemination, PullDelayThresholdSuppressesRedundantTransfers) {
  auto run_with_f = [](SimTime f) {
    SystemConfig config = small_config(48, 13);
    config.node.dissemination.pull_delay_threshold = f;
    System system(config);
    system.start();
    system.run_for(90.0);
    for (int i = 0; i < 10; ++i) {
      system.node(system.random_alive_node()).multicast(128);
      system.run_for(0.3);
    }
    system.run_for(10.0);
    std::uint64_t duplicates = 0;
    std::uint64_t deliveries = 0;
    for (NodeId id = 0; id < 48; ++id) {
      duplicates += system.node(id).duplicates_count();
      deliveries += system.node(id).deliveries_count();
    }
    return std::make_pair(duplicates, deliveries);
  };

  auto [dup_f0, del_f0] = run_with_f(0.0);
  auto [dup_f1, del_f1] = run_with_f(1.0);
  EXPECT_EQ(del_f0, del_f1);  // same deliveries either way
  EXPECT_LE(dup_f1, dup_f0);  // threshold can only reduce redundancy
}

TEST(Dissemination, StoreGarbageCollectsOldMessages) {
  SystemConfig config = small_config(8);
  config.node.dissemination.gc_payload_after = 2.0;
  config.node.dissemination.gc_record_after = 4.0;
  config.node.dissemination.gc_sweep_period = 0.5;
  System system(config);
  system.start();
  system.run_for(10.0);

  system.node(0).multicast(128);
  system.run_for(2.0);
  EXPECT_TRUE(system.node(0).dissemination().has_message(MsgId{0, 0}));
  system.run_for(10.0);
  EXPECT_FALSE(system.node(0).dissemination().has_message(MsgId{0, 0}));
  EXPECT_EQ(system.node(0).dissemination().store_size(), 0u);
}

TEST(Dissemination, GossipCountersAdvance) {
  System system(small_config(8));
  system.start();
  system.run_for(5.0);
  const auto& d = system.node(0).dissemination();
  EXPECT_GT(d.gossips_sent(), 0u);
  // Empty digests by default (no messages yet) still flow for membership.
  EXPECT_EQ(d.digest_entries_sent(), 0u);
}

TEST(Dissemination, SkipEmptyGossipsSuppressesIdleTraffic) {
  SystemConfig config = small_config(8);
  config.node.dissemination.skip_empty_gossips = true;
  System system(config);
  system.start();
  system.run_for(5.0);
  std::uint64_t gossips = 0;
  for (NodeId id = 0; id < 8; ++id) {
    gossips += system.node(id).dissemination().gossips_sent();
  }
  EXPECT_EQ(gossips, 0u);
}

TEST(Dissemination, DeadNodesDeliverNothing) {
  System system(small_config(16, 17));
  analysis::DeliveryTracker tracker(16);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(30.0);

  system.node(3).kill();
  system.run_for(2.0);
  tracker.set_recording(true);
  system.node(0).multicast(128);
  system.run_for(10.0);

  auto all = system.alive_nodes();
  auto report = tracker.report(all);
  EXPECT_EQ(report.live_nodes, 15u);
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 1.0);
  // The dead node must not appear as a deliverer.
  EXPECT_EQ(system.node(3).deliveries_count(), 0u);
}

TEST(Dissemination, ElapsedTimeTravelsWithPulledMessages) {
  // A message pulled long after injection must preserve its original
  // inject_time (used by the f threshold and the delay metrics).
  SystemConfig config = small_config(16, 19);
  config.node.dissemination.use_tree = false;
  System system(config);
  analysis::DeliveryTracker tracker(16);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(30.0);
  tracker.set_recording(true);

  SimTime inject_at = system.now();
  system.node(0).multicast(64);
  system.run_for(15.0);

  auto report = tracker.report(system.alive_nodes());
  ASSERT_EQ(report.messages, 1u);
  // All delays measured relative to the true inject time: max must be
  // well over one gossip period but nonnegative.
  EXPECT_GT(report.max_delay, 0.0);
  EXPECT_LT(report.max_delay, 15.0);
  (void)inject_at;
}

}  // namespace
}  // namespace gocast::core

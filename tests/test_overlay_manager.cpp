// Tests for the overlay maintenance protocols (§2.2): handshakes, degree
// caps, the random-degree operations, nearby replacement under C1–C4, link
// transfer, freezing, and failure handling.
#include "overlay/overlay_manager.h"

#include <gtest/gtest.h>

#include "protocol_test_shell.h"

namespace gocast::overlay {
namespace {

using testing::ShellCluster;

OverlayParams default_params() {
  OverlayParams p;
  p.target_rand_degree = 1;
  p.target_near_degree = 5;
  return p;
}

TEST(OverlayHandshake, RequestAcceptEstablishesBothSides) {
  ShellCluster cluster(4, default_params());
  auto& a = cluster.node(0).overlay();
  cluster.node(0).seed_member(1);

  // Drive a random add by running one maintenance cycle.
  a.start(0.0);
  cluster.engine().run_until(1.0);
  EXPECT_TRUE(a.is_neighbor(1));
  EXPECT_TRUE(cluster.node(1).overlay().is_neighbor(0));
  EXPECT_EQ(a.table().find(1)->kind, LinkKind::kRandom);
}

TEST(OverlayHandshake, EstablishedLinkHasMeasuredRtt) {
  ShellCluster cluster(8, default_params());
  cluster.node(0).seed_member(4);
  cluster.node(0).overlay().start(0.0);
  cluster.engine().run_until(1.0);
  ASSERT_TRUE(cluster.node(0).overlay().is_neighbor(4));
  EXPECT_NEAR(cluster.node(0).overlay().table().find(4)->rtt,
              cluster.network().rtt(0, 4), 1e-9);
}

TEST(OverlayHandshake, RandomRequestRejectedAtCap) {
  OverlayParams params = default_params();
  ShellCluster cluster(12, params);
  // Saturate node 1's random degree to C_rand + 5 = 6 via bootstrap.
  for (NodeId peer = 2; peer <= 7; ++peer) {
    cluster.node(1).overlay().bootstrap_link(peer, LinkKind::kRandom);
    cluster.node(peer).overlay().bootstrap_link(1, LinkKind::kRandom);
  }
  EXPECT_EQ(cluster.node(1).overlay().rand_degree(), 6);

  cluster.node(0).seed_member(1);
  cluster.node(0).overlay().start(0.0);
  cluster.engine().run_until(0.5);
  EXPECT_FALSE(cluster.node(0).overlay().is_neighbor(1));
}

TEST(OverlayMaintenance, RandomDegreeConvergesToTargetOrPlusOne) {
  OverlayParams params = default_params();
  params.target_near_degree = 0;
  params.maintain_nearby = false;
  params.target_rand_degree = 3;
  ShellCluster cluster(16, params);
  cluster.seed_full_views();
  // Start from an unbalanced bootstrap: node 0 linked to everyone.
  for (NodeId peer = 1; peer < 16; ++peer) {
    cluster.node(0).overlay().bootstrap_link(peer, LinkKind::kRandom);
    cluster.node(peer).overlay().bootstrap_link(0, LinkKind::kRandom);
  }
  cluster.start_all();
  cluster.engine().run_until(30.0);

  for (NodeId id = 0; id < 16; ++id) {
    int degree = cluster.node(id).overlay().rand_degree();
    EXPECT_GE(degree, 3) << "node " << id;
    EXPECT_LE(degree, 4) << "node " << id;
  }
}

TEST(OverlayMaintenance, NearbyDegreeConverges) {
  ShellCluster cluster(24, default_params());
  cluster.seed_full_views();
  cluster.start_all();
  cluster.engine().run_until(60.0);

  for (NodeId id = 0; id < 24; ++id) {
    int near_deg = cluster.node(id).overlay().near_degree();
    EXPECT_GE(near_deg, 4) << "node " << id;
    EXPECT_LE(near_deg, 6) << "node " << id;
  }
}

TEST(OverlayMaintenance, NearbyLinksPreferLowLatency) {
  // On the ring model, nearby neighbors should end up ring-adjacent.
  ShellCluster cluster(32, default_params());
  cluster.seed_full_views();
  cluster.start_all();
  cluster.engine().run_until(120.0);

  double total = 0.0;
  int count = 0;
  for (NodeId id = 0; id < 32; ++id) {
    const auto& table = cluster.node(id).overlay().table();
    for (const auto& [peer, info] : table.raw()) {
      if (info.kind == LinkKind::kNearby) {
        total += cluster.network().one_way(id, peer);
        ++count;
      }
    }
  }
  ASSERT_GT(count, 0);
  double mean = total / count;
  // Random pairs average ~0.04 s on this ring; adapted nearby links must be
  // far below that.
  EXPECT_LT(mean, 0.02);
}

TEST(OverlayMaintenance, LinkTransferReducesDegreeByTwo) {
  OverlayParams params = default_params();
  params.maintain_nearby = false;
  params.target_rand_degree = 1;
  ShellCluster cluster(8, params);
  cluster.seed_full_views();
  // Node 0 starts with 3 random links: two beyond target.
  for (NodeId peer : {1u, 2u, 3u}) {
    cluster.node(0).overlay().bootstrap_link(peer, LinkKind::kRandom);
    cluster.node(peer).overlay().bootstrap_link(0, LinkKind::kRandom);
  }
  cluster.node(0).overlay().start(0.0);
  cluster.engine().run_until(2.0);

  EXPECT_LE(cluster.node(0).overlay().rand_degree(), 2);
  // The handed-off pair should have connected to each other (transfer), so
  // total links among {1,2,3} grew.
  int cross_links = 0;
  for (NodeId a : {1u, 2u, 3u}) {
    for (NodeId b : {1u, 2u, 3u}) {
      if (a < b && cluster.node(a).overlay().is_neighbor(b)) ++cross_links;
    }
  }
  EXPECT_GE(cross_links, 1);
}

TEST(OverlayMaintenance, FrozenManagerMakesNoChanges) {
  ShellCluster cluster(8, default_params());
  cluster.seed_full_views();
  cluster.node(0).overlay().bootstrap_link(1, LinkKind::kRandom);
  cluster.node(1).overlay().bootstrap_link(0, LinkKind::kRandom);
  for (NodeId id = 0; id < 8; ++id) cluster.node(id).overlay().freeze();
  cluster.start_all();
  cluster.engine().run_until(10.0);

  EXPECT_EQ(cluster.node(0).overlay().degree(), 1);
  EXPECT_EQ(cluster.node(2).overlay().degree(), 0);
}

TEST(OverlayMaintenance, FrozenManagerRejectsRequests) {
  ShellCluster cluster(4, default_params());
  cluster.node(1).overlay().freeze();
  cluster.node(0).seed_member(1);
  cluster.node(0).overlay().start(0.0);
  cluster.engine().run_until(1.0);
  EXPECT_FALSE(cluster.node(0).overlay().is_neighbor(1));
  EXPECT_FALSE(cluster.node(1).overlay().is_neighbor(0));
}

TEST(OverlayFailure, SendFailureRemovesNeighborAndViewEntry) {
  ShellCluster cluster(6, default_params());
  cluster.seed_full_views();
  cluster.node(0).overlay().bootstrap_link(1, LinkKind::kRandom);
  cluster.node(1).overlay().bootstrap_link(0, LinkKind::kRandom);
  cluster.network().fail_node(1);

  // Node 0 gossips/measures into the void; the TCP reset removes node 1.
  cluster.node(0).overlay().start(0.0);
  cluster.engine().run_until(5.0);
  EXPECT_FALSE(cluster.node(0).overlay().is_neighbor(1));
  EXPECT_FALSE(cluster.node(0).view().contains(1));
}

TEST(OverlayRtt, MeasureRttDeliversTrueValue) {
  ShellCluster cluster(10, default_params());
  double measured = -1.0;
  cluster.node(2).overlay().measure_rtt(7, [&](SimTime rtt) { measured = rtt; });
  cluster.engine().run();
  EXPECT_NEAR(measured, cluster.network().rtt(2, 7), 1e-9);
}

TEST(OverlayRtt, PongAfterTimeoutIsIgnored) {
  OverlayParams params = default_params();
  params.pending_timeout = 0.001;  // expire before the pong returns
  ShellCluster cluster(10, params);
  bool fired = false;
  cluster.node(0).overlay().start(0.0);
  cluster.node(0).overlay().measure_rtt(5, [&](SimTime) { fired = true; });
  cluster.engine().run_until(5.0);
  EXPECT_FALSE(fired);
}

TEST(OverlayDegrees, MyDegreesReflectTable) {
  ShellCluster cluster(6, default_params());
  auto& overlay = cluster.node(0).overlay();
  overlay.bootstrap_link(1, LinkKind::kRandom);
  overlay.bootstrap_link(2, LinkKind::kNearby);
  overlay.bootstrap_link(3, LinkKind::kNearby);
  net::PeerDegrees d = overlay.my_degrees();
  EXPECT_EQ(d.rand_degree, 1);
  EXPECT_EQ(d.near_degree, 2);
  EXPECT_GT(d.max_nearby_rtt, 0.0f);
}

TEST(OverlayStats, LinkChangeAccounting) {
  OverlayParams params = default_params();
  params.record_link_changes = true;
  ShellCluster cluster(4, params);
  auto& overlay = cluster.node(0).overlay();
  overlay.bootstrap_link(1, LinkKind::kRandom);
  EXPECT_EQ(overlay.links_added(), 1u);
  EXPECT_EQ(overlay.link_change_times().size(), 1u);
}

TEST(OverlayListeners, AddAndRemoveEventsFire) {
  ShellCluster cluster(4, default_params());

  struct Recorder final : OverlayListener {
    std::vector<std::pair<NodeId, bool>> events;  // (peer, added)
    void on_neighbor_added(NodeId peer, LinkKind) override {
      events.emplace_back(peer, true);
    }
    void on_neighbor_removed(NodeId peer) override {
      events.emplace_back(peer, false);
    }
  } recorder;

  auto& overlay = cluster.node(0).overlay();
  overlay.add_listener(&recorder);
  overlay.bootstrap_link(1, LinkKind::kRandom);
  overlay.on_peer_failure(1);
  ASSERT_EQ(recorder.events.size(), 2u);
  EXPECT_EQ(recorder.events[0], std::make_pair(NodeId{1}, true));
  EXPECT_EQ(recorder.events[1], std::make_pair(NodeId{1}, false));
}

TEST(OverlayParamsValidation, RejectsBadConfig) {
  sim::Engine engine;
  net::Network network(engine, std::make_shared<net::RingLatencyModel>(4, 0.08),
                       net::NetworkConfig{}, Rng(1));
  network.add_node(0);
  membership::PartialView view(0, 16, Rng(2));

  OverlayParams bad;
  bad.target_rand_degree = 0;
  bad.target_near_degree = 0;
  EXPECT_THROW(OverlayManager(0, network, view, bad, Rng(3)), AssertionError);

  OverlayParams bad_ratio;
  bad_ratio.replace_ratio = 0.0;
  EXPECT_THROW(OverlayManager(0, network, view, bad_ratio, Rng(3)),
               AssertionError);
}

}  // namespace
}  // namespace gocast::overlay

// Tests for the extension features the paper sketches as accommodatable or
// future work: adaptive maintenance/gossip periods, capacity-aware degrees,
// and churn (deferred joins) support.
#include <gtest/gtest.h>

#include "analysis/delivery_tracker.h"
#include "analysis/graph_analysis.h"
#include "gocast/system.h"

namespace gocast::core {
namespace {

TEST(AdaptiveMaintenance, CutsControlTrafficOnceStable) {
  auto ping_count = [](bool adaptive) {
    SystemConfig config;
    config.node_count = 32;
    config.seed = 50;
    config.node.overlay.adaptive_maintenance = adaptive;
    config.node.overlay.maintenance_period_max = 2.0;
    System system(config);
    system.start();
    system.run_for(60.0);  // converge
    std::uint64_t before = system.network().traffic().kind(net::MsgKind::kPing).messages;
    system.run_for(120.0);  // stable phase
    return system.network().traffic().kind(net::MsgKind::kPing).messages - before;
  };
  std::uint64_t fixed = ping_count(false);
  std::uint64_t adaptive = ping_count(true);
  EXPECT_LT(adaptive, fixed / 2) << "fixed=" << fixed << " adaptive=" << adaptive;
}

TEST(AdaptiveMaintenance, StillConvergesToTargetDegrees) {
  SystemConfig config;
  config.node_count = 48;
  config.seed = 51;
  config.node.overlay.adaptive_maintenance = true;
  System system(config);
  system.start();
  system.run_for(120.0);
  IntDistribution degrees = analysis::degree_distribution(system);
  EXPECT_GT(degrees.fraction(6) + degrees.fraction(7), 0.75);
  auto graph = analysis::snapshot_overlay(system);
  EXPECT_DOUBLE_EQ(analysis::components(graph).largest_fraction, 1.0);
}

TEST(AdaptiveGossip, IdleSystemGossipsLess) {
  auto gossip_count = [](bool adaptive) {
    SystemConfig config;
    config.node_count = 24;
    config.seed = 52;
    config.node.dissemination.adaptive_gossip = adaptive;
    config.node.dissemination.gossip_period_max = 1.0;
    System system(config);
    system.start();
    system.run_for(120.0);  // fully idle: no multicasts
    std::uint64_t total = 0;
    for (NodeId id = 0; id < system.size(); ++id) {
      total += system.node(id).dissemination().gossips_sent();
    }
    return total;
  };
  std::uint64_t fixed = gossip_count(false);
  std::uint64_t adaptive = gossip_count(true);
  EXPECT_LT(adaptive, fixed / 3);
}

TEST(AdaptiveGossip, SnapsBackOnTrafficWithoutHurtingDelivery) {
  SystemConfig config;
  config.node_count = 32;
  config.seed = 53;
  config.node.dissemination.adaptive_gossip = true;
  config.node.dissemination.use_tree = false;  // force gossip path
  System system(config);
  analysis::DeliveryTracker tracker(32);
  system.set_delivery_hook(tracker.hook());
  system.start();
  system.run_for(90.0);  // idle: periods stretched to the max

  tracker.set_recording(true);
  system.node(0).multicast(128);
  system.run_for(20.0);
  auto report = tracker.report(system.alive_nodes());
  EXPECT_DOUBLE_EQ(report.delivered_fraction, 1.0);
}

TEST(CapacityAwareDegrees, BigNodesCarryMoreLinks) {
  SystemConfig config;
  config.node_count = 64;
  config.seed = 54;
  // Nodes 0..15 are "big" (2x capacity), the rest are standard.
  config.capacity_of = [](NodeId id) { return id < 16 ? 2.0 : 1.0; };
  System system(config);
  system.start();
  system.run_for(120.0);

  double big = 0.0;
  double standard = 0.0;
  for (NodeId id = 0; id < 64; ++id) {
    double degree = system.node(id).overlay().near_degree();
    (id < 16 ? big : standard) += degree;
  }
  big /= 16.0;
  standard /= 48.0;
  EXPECT_GT(big, standard * 1.4);
  // Targets were scaled, not chaos: 2x capacity -> ~10 nearby links.
  EXPECT_NEAR(big, 10.0, 2.0);
  EXPECT_NEAR(standard, 5.0, 1.0);
}

TEST(Churn, DeferredNodesStartDead) {
  SystemConfig config;
  config.node_count = 24;
  config.seed = 55;
  config.deferred_nodes = 4;
  System system(config);
  system.start();
  EXPECT_EQ(system.network().alive_count(), 20u);
  EXPECT_EQ(system.deferred_remaining(), 4u);
  for (NodeId id = 20; id < 24; ++id) {
    EXPECT_FALSE(system.network().alive(id));
  }
}

TEST(Churn, SpawnedNodeJoinsAndIntegrates) {
  SystemConfig config;
  config.node_count = 24;
  config.seed = 56;
  config.deferred_nodes = 2;
  System system(config);
  system.start();
  system.run_for(60.0);

  NodeId spawned = system.spawn_next();
  ASSERT_NE(spawned, kInvalidNode);
  EXPECT_TRUE(system.network().alive(spawned));
  system.run_for(30.0);

  EXPECT_GE(system.node(spawned).overlay().degree(), 4);
  auto graph = analysis::snapshot_overlay(system);
  EXPECT_DOUBLE_EQ(analysis::components(graph).largest_fraction, 1.0);
  // And it receives multicasts.
  analysis::DeliveryTracker tracker(24);
  system.set_delivery_hook(tracker.hook());
  tracker.set_recording(true);
  system.node(0).multicast(64);
  system.run_for(10.0);
  EXPECT_DOUBLE_EQ(tracker.report(system.alive_nodes()).delivered_fraction, 1.0);
}

TEST(Churn, SpawnExhaustionReturnsInvalid) {
  SystemConfig config;
  config.node_count = 12;
  config.seed = 57;
  config.deferred_nodes = 1;
  System system(config);
  system.start();
  EXPECT_NE(system.spawn_next(), kInvalidNode);
  EXPECT_EQ(system.spawn_next(), kInvalidNode);
  EXPECT_EQ(system.deferred_remaining(), 0u);
}

TEST(Churn, ContinuousJoinLeaveKeepsSystemHealthy) {
  SystemConfig config;
  config.node_count = 48;
  config.seed = 58;
  config.deferred_nodes = 12;
  System system(config);
  system.start();
  system.run_for(60.0);

  // Alternate: one leave, one join, every 5 seconds.
  for (int round = 0; round < 12; ++round) {
    system.node(system.random_alive_node()).kill();
    ASSERT_NE(system.spawn_next(), kInvalidNode);
    system.run_for(5.0);
  }
  system.run_for(60.0);

  auto graph = analysis::snapshot_overlay(system);
  EXPECT_DOUBLE_EQ(analysis::components(graph).largest_fraction, 1.0);
  auto tree = analysis::tree_stats(system);
  EXPECT_TRUE(tree.spanning);

  analysis::DeliveryTracker tracker(48);
  system.set_delivery_hook(tracker.hook());
  tracker.set_recording(true);
  for (int i = 0; i < 3; ++i) system.node(system.random_alive_node()).multicast(64);
  system.run_for(15.0);
  EXPECT_DOUBLE_EQ(tracker.report(system.alive_nodes()).delivered_fraction, 1.0);
}

}  // namespace
}  // namespace gocast::core

// Tests for the experiment harness: every protocol runs end to end through
// run_scenario with sane results; the table printer formats correctly.
#include "harness/scenario.h"

#include <gtest/gtest.h>

#include <sstream>

#include "harness/table.h"

namespace gocast::harness {
namespace {

ScenarioConfig tiny(Protocol protocol) {
  ScenarioConfig config;
  config.protocol = protocol;
  config.node_count = 48;
  config.warmup = 40.0;
  config.message_count = 10;
  config.message_rate = 50.0;
  config.drain = 25.0;
  config.seed = 3;
  return config;
}

TEST(Scenario, GoCastDeliversEverything) {
  auto result = run_scenario(tiny(Protocol::kGoCast));
  EXPECT_DOUBLE_EQ(result.report.delivered_fraction, 1.0);
  EXPECT_EQ(result.report.messages, 10u);
  EXPECT_EQ(result.alive_nodes, 48u);
  EXPECT_GT(result.deliveries, 0u);
  EXPECT_GE(result.redundancy(), 1.0);
  EXPECT_FALSE(result.curve.empty());
}

TEST(Scenario, ProximityOverlayDeliversViaGossipOnly) {
  auto result = run_scenario(tiny(Protocol::kProximityOverlay));
  EXPECT_DOUBLE_EQ(result.report.delivered_fraction, 1.0);
  // No tree: zero tree-control traffic after warmup is impossible to check
  // directly here, but pull traffic must dominate data dissemination.
  EXPECT_GT(result.traffic.kind(net::MsgKind::kPullRequest).messages, 100u);
}

TEST(Scenario, RandomOverlayUsesOnlyRandomLinks) {
  auto result = run_scenario(tiny(Protocol::kRandomOverlay));
  EXPECT_DOUBLE_EQ(result.report.delivered_fraction, 1.0);
}

TEST(Scenario, PushGossipRunsWithConfiguredFanout) {
  ScenarioConfig config = tiny(Protocol::kPushGossip);
  config.fanout = 8;
  config.warmup = 2.0;
  auto result = run_scenario(config);
  EXPECT_GT(result.report.delivered_fraction, 0.95);
}

TEST(Scenario, NoWaitGossipIsFasterThanPeriodicGossip) {
  ScenarioConfig periodic = tiny(Protocol::kPushGossip);
  periodic.warmup = 2.0;
  periodic.fanout = 6;
  ScenarioConfig no_wait = tiny(Protocol::kNoWaitGossip);
  no_wait.warmup = 2.0;
  no_wait.fanout = 6;
  auto slow = run_scenario(periodic);
  auto fast = run_scenario(no_wait);
  EXPECT_LT(fast.report.delay.mean(), slow.report.delay.mean());
}

TEST(Scenario, GoCastBeatsGossipOnDelay) {
  auto gocast = run_scenario(tiny(Protocol::kGoCast));
  ScenarioConfig gossip_config = tiny(Protocol::kPushGossip);
  gossip_config.warmup = 2.0;
  auto gossip = run_scenario(gossip_config);
  EXPECT_LT(gocast.report.delay.mean(), gossip.report.delay.mean());
}

TEST(Scenario, FailuresKillRequestedFraction) {
  ScenarioConfig config = tiny(Protocol::kGoCast);
  config.fail_fraction = 0.25;
  config.drain = 40.0;
  auto result = run_scenario(config);
  EXPECT_EQ(result.alive_nodes, 36u);
  EXPECT_DOUBLE_EQ(result.report.delivered_fraction, 1.0);
}

TEST(Scenario, SiteFairRecordingOnlyWhenRequested) {
  auto without = run_scenario(tiny(Protocol::kGoCast));
  EXPECT_TRUE(without.traffic.site_pair_bytes().empty());

  ScenarioConfig config = tiny(Protocol::kGoCast);
  config.record_site_pairs = true;
  auto with = run_scenario(config);
  EXPECT_FALSE(with.traffic.site_pair_bytes().empty());
}

TEST(Scenario, ProtocolNamesAreStable) {
  EXPECT_STREQ(protocol_name(Protocol::kGoCast), "GoCast");
  EXPECT_STREQ(protocol_name(Protocol::kPushGossip), "gossip");
  EXPECT_STREQ(protocol_name(Protocol::kNoWaitGossip), "no-wait gossip");
}

TEST(Table, FormatsAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22"});
  std::ostringstream os;
  table.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), AssertionError);
}

TEST(TableFormat, Helpers) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_ms(0.0155, 1), "15.5 ms");
  EXPECT_EQ(fmt_pct(0.876, 1), "87.6%");
}

}  // namespace
}  // namespace gocast::harness
